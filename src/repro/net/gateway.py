"""The network gateway: asyncio front-end over the prediction backends.

The paper's deployment model is a *service*: remote hosts that hold no
atlas send path queries over the network, and one daily delta ships to
every full client. Everything below this module answers queries only
in-process (``repro.runtime``) or over ``multiprocessing`` pipes
(``repro.serve``); :class:`NetworkGateway` is the node boundary —

* it listens on **TCP and unix-domain sockets** simultaneously (one
  gateway, both transports, same protocol bytes);
* each connection speaks the length-prefixed binary frames of
  :mod:`repro.net.protocol`, **pipelined**: a client may send any
  number of requests before reading replies, and the gateway answers
  in order with matching request ids;
* requests fan out to a backend — a sharded
  :class:`~repro.serve.service.PredictionService` or a single-process
  :class:`~repro.client.server.AtlasServer` — through a **single-thread
  executor bridge**: the asyncio loop never blocks on a prediction, and
  the backends (whose pipe protocol and predictor pool are not
  thread-safe) see exactly one caller thread;
* **backpressure** is structural: a connection's frames are processed
  in arrival order and the socket is only read between requests, so a
  client that pipelines faster than the backend answers fills the
  kernel's TCP window instead of gateway memory. Frame sizes are capped
  by ``max_frame`` and a decoder violation closes the connection;
* **admission control** (:mod:`repro.net.admission`): per-client
  token-bucket rate limits and node-wide queue-depth shedding refuse
  *query* frames with a typed ``RETRY`` (retry-after hint, same
  request id) instead of hanging or silently dropping them, and a
  connection cap refuses new sockets with a typed ``E_OVERLOADED``.
  Bootstrap and subscription frames are never shed. For the open
  internet, ``ssl_context=`` wraps both listeners in TLS and
  ``auth_token=`` demands a shared secret in every HELLO
  (``FLAG_AUTH``) — a bad token gets a typed ``E_UNAUTHORIZED`` and
  the connection closes;
* **delta broadcast**: :meth:`push_delta` applies one day's
  :class:`~repro.atlas.delta.AtlasDelta` to the backend, encodes the
  ``INDB`` payload **once**, and hands the single shared ``DELTA_PUSH``
  frame to every subscribed connection's bounded send queue. One writer
  task per connection drains its queue concurrently, so a slow or
  stalled subscriber delays only itself — never the broadcast. A
  subscriber whose queue exceeds ``subscriber_buffer`` has stopped
  reading: it is unsubscribed with a typed ``SUB_DROPPED`` frame
  (counted in ``stats["push_drops"]``) instead of buffering gateway
  memory without bound, and a peer whose socket dies mid-drain is
  counted in ``stats["push_errors"]`` and dropped from the broadcast
  set entirely;
* **log compaction**: the pushed-delta log would otherwise grow with
  gateway uptime, and every bootstrap replays it past the anchor. On a
  cadence (``compact_days`` days or ``log_max_bytes`` retained bytes)
  the gateway folds the log into a fresh anchor — an **exact**
  (format-2, lossless, order-preserving) encode of the backend's
  current atlas — and drops the covered prefix, so a week-offline
  bootstrap costs one anchor plus a short suffix while the
  anchor+``INDB`` bit-for-bit convergence contract holds unchanged.

For planetary fan-out, :class:`~repro.net.relay.RelayGateway` chains
gateways into distribution tiers: a relay bootstraps from an upstream
gateway over the same wire protocol, applies upstream pushes to its own
runtime, and re-serves bootstrap + broadcast downstream — same frames,
same bytes, bit-for-bit.

Run it synchronously from tests and applications: :meth:`start` spawns
a daemon thread owning the event loop and returns once the listeners
are bound; :meth:`close` tears everything down. The gateway is
observation-equivalent to its backend — a networked client's answers
are bit-for-bit the co-located answers (``tests/test_net_equivalence.py``
drives TCP and UDS clients through the full churn chain against a
co-located oracle).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.atlas.serialization import encode_atlas, encode_delta
from repro.client.query import combine_batches
from repro.errors import (
    AtlasError,
    CodecError,
    NetworkError,
    ProtocolError,
    ReproError,
)
from repro.net import protocol as P
from repro.net.admission import AdmissionControl
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceCollector, Tracer

__all__ = ["NetworkGateway"]

_READ_CHUNK = 64 * 1024


# -- backend adapters ------------------------------------------------------


class _ServiceBackend:
    """Bridge to a sharded :class:`~repro.serve.service.PredictionService`."""

    name = "service"
    #: accepts a trace context as a fourth call argument; the service
    #: records routing/worker/kernel spans in its own collector, which
    #: :meth:`trace_spans` exposes to the gateway's TRACE_FETCH path
    supports_trace = True
    tracer = None  # set by the gateway; unused here

    def __init__(self, service) -> None:
        self.service = service
        #: the day the service held at gateway construction — as long
        #: as no delta has been applied since, the quantized format-1
        #: encode round-trips to exactly the shard atlases (they were
        #: decoded from such an encode); past it only the exact
        #: format-2 encode anchors without forking the client
        self._pristine_day = service.day

    @property
    def day(self) -> int:
        return self.service.day

    def predict_batch(self, pairs, config, client, trace=None):
        return self.service.predict_batch(pairs, config, client, trace=trace)

    def query_batch(self, pairs, config, client, trace=None):
        return self.service.query_batch(pairs, config, client, trace=trace)

    def trace_spans(self, trace_id: int) -> list:
        return self.service.trace_spans(trace_id)

    def atlas_bytes(self, day: int | None) -> tuple[int, bytes]:
        """The bootstrap anchor ``(day, payload)``; the gateway caches
        it and replays newer pushed deltas on top so the client lands
        on the current day."""
        current = self.service.day
        if day is not None and day != current:
            raise AtlasError(
                f"service serves day {current}, cannot bootstrap day {day}"
            )
        return current, encode_atlas(
            self.service.atlas, exact=current != self._pristine_day
        )

    def reanchor_bytes(self) -> tuple[int, bytes]:
        """Fold the delta log away: an exact (lossless, order-preserving)
        encode of the current atlas is a valid fresh anchor, because the
        service's atlas *is* the client-visible atlas — same anchor
        bytes, same lossless deltas."""
        return self.service.day, encode_atlas(self.service.atlas, exact=True)

    def apply_delta(self, delta, payload: bytes) -> int:
        # the push payload doubles as the shard broadcast payload
        self.service.apply_delta(delta, payload=payload)
        return self.service.day

    def kernel_sample(self):
        """The kernels live in the shard worker processes; sampling them
        per request would cost a pipe round-trip per query, so STATS
        frames from a service backend carry wall time only (the worker
        ``stats`` op exposes the per-shard kernel counters offline)."""
        return None

    def load_sample(self) -> dict:
        """The service's front-end load telemetry (no worker round
        trips) for the STATS frame: queue depth, in-flight messages,
        request round-trip percentiles. Runs on the bridge thread."""
        sample = self.service.load_stats()
        return {
            "queue_depth": sample["queue_depth"],
            "inflight": sample["inflight"],
            "req_p50_us": sample["req_p50_us"],
            "req_p99_us": sample["req_p99_us"],
        }


class _ServerBackend:
    """Bridge to a single-process :class:`~repro.client.server.AtlasServer`.

    Queries answer through the server's own shared runtime (one
    compiled graph + one pooled search cache with every co-located
    consumer — which is what makes the remote/co-located equivalence
    bit-for-bit trivial to audit)."""

    name = "server"
    #: accepts a trace context as a fourth call argument and records a
    #: ``kernel.search`` span (kernel-counter deltas, cache-hit vs
    #: cold split, repair class) through the gateway-assigned tracer —
    #: the kernel lives in this very process, so the span is exact
    supports_trace = True
    tracer = None  # set by the gateway

    def __init__(self, server) -> None:
        self.server = server

    @property
    def _runtime(self):
        return self.server.runtime()

    @property
    def day(self) -> int:
        return self._runtime.atlas.day

    def _traced_run(self, fn, trace):
        """Run ``fn`` under a ``kernel.search`` span attributing the
        shared pool's counter deltas to this request. Bridge-thread
        only, like every backend call, so the before/after sampling
        sees exactly one caller."""
        pool = self._runtime.pool
        k0 = pool.kernel_stats()
        start_us = Tracer.now_us()
        result = fn()
        k1 = pool.kernel_stats()
        searches = k1["searches"] - k0["searches"]
        repair = max(
            (k for k in ("reused", "repaired", "replayed", "dirty")),
            key=lambda k: pool.last_repair.get(k, 0),
            default="none",
        )
        self.tracer.record(
            trace,
            "kernel.search",
            start_us,
            k1["search_us"] - k0["search_us"],
            searches=searches,
            hits=k1["hits"] - k0["hits"],
            cache="cold" if searches else "hit",
            repair=repair if pool.last_repair.get(repair, 0) else "none",
        )
        return result

    def predict_batch(self, pairs, config, client, trace=None):
        if client is not None:
            raise ProtocolError(
                "client-scoped queries need a sharded service backend"
            )
        run = lambda: self._runtime.pool.predictor(config).predict_batch(
            list(pairs)
        )
        if trace is None or self.tracer is None:
            return run()
        return self._traced_run(run, trace)

    def query_batch(self, pairs, config, client, trace=None):
        if client is not None:
            raise ProtocolError(
                "client-scoped queries need a sharded service backend"
            )
        runtime = self._runtime
        run = lambda: combine_batches(
            pairs,
            runtime.pool.predictor(config).predict_batch,
            runtime.atlas.day,
        )
        if trace is None or self.tracer is None:
            return run()
        return self._traced_run(run, trace)

    def atlas_bytes(self, day: int | None) -> tuple[int, bytes]:
        """The published payload as the bootstrap anchor; when pushes
        have advanced the runtime past the latest *published* day, the
        gateway's delta-log replay carries the client the rest of the
        way (the INNA codec quantizes, so only anchor + lossless INDB
        deltas reproduces the runtime's exact atlas)."""
        if day is None:
            day = self.server.latest_day()
        return day, self.server.full_atlas_bytes(day)

    def reanchor_bytes(self) -> tuple[int, bytes]:
        """Exact encode of the shared runtime's current atlas — the
        very state a bootstrapped client must land on, so it anchors
        bit-for-bit with an empty replay suffix."""
        runtime = self._runtime
        return runtime.atlas.day, encode_atlas(runtime.atlas, exact=True)

    def apply_delta(self, delta, payload: bytes) -> int:
        # server.runtime() rolls itself through the server's published
        # delta chain, so a delta that was published before being pushed
        # is already applied by the time we get here — push-only then
        runtime = self._runtime
        if runtime.atlas.day < delta.new_day:
            runtime.apply_delta(delta)
        return runtime.atlas.day

    def kernel_sample(self):
        """A snapshot of the shared pool's kernel counters plus the
        repair-class counts of the last applied delta; the gateway
        differences two snapshots to attribute kernel work per request.
        Runs on the bridge thread, like every backend call."""
        pool = self._runtime.pool
        return pool.kernel_stats(), dict(pool.last_repair)


def _resolve_backend(backend):
    if hasattr(backend, "shard_snapshots"):  # PredictionService
        return _ServiceBackend(backend)
    if hasattr(backend, "full_atlas_bytes"):  # AtlasServer
        return _ServerBackend(backend)
    if hasattr(backend, "atlas_bytes") and hasattr(backend, "predict_batch"):
        return backend  # pre-built adapter (tests)
    raise TypeError(
        f"cannot serve {type(backend).__name__}: expected a "
        "PredictionService or AtlasServer"
    )


# -- connection state ------------------------------------------------------


class _PushTracker:
    """Per-broadcast drain meter: each subscriber's writer task calls
    :meth:`done` once the shared push frame has drained to its socket;
    the slowest drain of the broadcast lands in
    ``stats["push_drain_slowest_us"]`` (and rides the STATS wire
    frame as ``push_drain_us``)."""

    __slots__ = ("stats", "t0")

    def __init__(self, stats: dict, t0: float) -> None:
        self.stats = stats
        self.t0 = t0

    def done(self) -> None:
        elapsed_us = (time.perf_counter() - self.t0) * 1e6
        if elapsed_us > self.stats["push_drain_slowest_us"]:
            self.stats["push_drain_slowest_us"] = elapsed_us


class _Conn:
    """Per-connection state. Every outgoing frame goes through
    ``queue`` — drained by one writer task per connection — so a
    broadcast enqueues a single shared frame object to every subscriber
    (zero copy) and a slow peer blocks only its own writer task."""

    __slots__ = (
        "writer",
        "peer",
        "subscribed",
        "stats",
        "trace",
        "hello_done",
        "queue",
        "queued_bytes",
        "task",
        "wake",
        "space",
        "drained",
        "closing",
    )

    def __init__(self, writer, peer: str) -> None:
        self.writer = writer
        self.peer = peer
        self.subscribed = False
        #: FLAG_STATS negotiated: every successful query reply is
        #: followed by a STATS frame with the same request id
        self.stats = False
        #: FLAG_TRACE negotiated: query payloads may carry a trailing
        #: trace context and TRACE_FETCH is answered
        self.trace = False
        self.hello_done = False
        #: pending ``(frame, tracker)`` writes; tracker is non-None
        #: only for broadcast push frames. ``frame is None`` is a drain
        #: sentinel: the broadcast fast path already wrote the bytes
        #: into the transport and only needs the writer task to await
        #: the flush so the tracker times it
        self.queue: deque[tuple[bytes | None, _PushTracker | None]] = deque()
        self.queued_bytes = 0
        self.task: asyncio.Task | None = None
        self.wake = asyncio.Event()
        self.space = asyncio.Event()
        self.space.set()
        self.drained = asyncio.Event()
        self.drained.set()
        self.closing = False

    def enqueue(
        self, frame: bytes | None, tracker: _PushTracker | None = None
    ) -> bool:
        if self.closing:
            return False
        self.queue.append((frame, tracker))
        if frame is not None:
            self.queued_bytes += len(frame)
        self.drained.clear()
        self.wake.set()
        return True


class NetworkGateway:
    """Serves the wire protocol on TCP and/or unix-domain sockets."""

    def __init__(
        self,
        backend,
        *,
        tcp: tuple[str, int] | None = None,
        uds: str | None = None,
        max_frame: int = P.DEFAULT_MAX_FRAME,
        hello_timeout: float = 10.0,
        subscriber_buffer: int = 4 * 1024 * 1024,
        reply_buffer: int = 4 * 1024 * 1024,
        compact_days: int | None = 7,
        log_max_bytes: int | None = 64 * 1024 * 1024,
        admission: AdmissionControl | None = None,
        ssl_context=None,
        auth_token: str | None = None,
    ) -> None:
        if tcp is None and uds is None:
            raise ValueError("gateway needs a TCP address and/or a UDS path")
        self.backend = _resolve_backend(backend)
        #: admission policy (rate limits / queue shed / connection cap);
        #: the default object admits everything
        self.admission = admission if admission is not None else AdmissionControl()
        #: optional ``ssl.SSLContext`` applied to both listeners
        self.ssl_context = ssl_context
        #: optional shared secret every HELLO must carry (FLAG_AUTH);
        #: a missing or wrong token gets a typed E_UNAUTHORIZED + close
        self.auth_token = auth_token
        self._tcp_request = tcp
        self._uds_request = uds
        self.max_frame = int(max_frame)
        self.hello_timeout = hello_timeout
        #: a subscriber whose unsent queue exceeds this is unsubscribed
        #: with a SUB_DROPPED frame instead of buffering more pushes
        self.subscriber_buffer = int(subscriber_buffer)
        #: request handlers pause reading new requests while a
        #: connection's unsent replies exceed this (structural
        #: backpressure, now measured at the send queue)
        self.reply_buffer = int(reply_buffer)
        #: compaction cadence: fold the delta log into a fresh exact
        #: anchor every ``compact_days`` days and/or whenever the log
        #: retains more than ``log_max_bytes``; None disables that axis
        self.compact_days = compact_days
        self.log_max_bytes = log_max_bytes
        self.tcp_address: tuple[str, int] | None = None
        self.uds_path: str | None = None
        # one bridge thread: the backends assume a single caller thread
        self._bridge = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="inano-gateway"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._servers: list = []
        self._conns: set[_Conn] = set()
        #: deltas pushed through this gateway since the last
        #: compaction, in order ``(new_day, encoded payload)`` —
        #: replayed after an ATLAS reply so a bootstrap anchored on an
        #: older payload still lands, losslessly, on the current day
        self._delta_log: list[tuple[int, bytes]] = []
        self._log_bytes = 0
        #: ``(day, payload)`` bootstrap anchor: captured lazily from the
        #: backend at first fetch, replaced by an exact re-encode at
        #: every compaction. Loop-thread state, like the log.
        self._anchor: tuple[int, bytes] | None = None
        #: oldest day still bootstrappable after compaction dropped the
        #: log prefix (None until the first compaction)
        self._log_floor: int | None = None
        self._closed = False
        #: the gateway's metrics registry; :attr:`stats` is a
        #: dict-shaped view over it (``net.gateway.*`` gauges), so the
        #: registry holds the only copy of every counter below
        self.obs = MetricsRegistry()
        self.stats = self.obs.view(
            "net.gateway",
            (
                "connections_total",
                "connections_open",
                "frames_in",
                "frames_out",
                "requests",
                "errors_sent",
                "bytes_in",
                "bytes_out",
                "deltas_pushed",
                "push_frames",
                "push_errors",
                "push_drops",
                "push_encode_us",
                "push_enqueue_us",
                "push_drain_slowest_us",
                "stats_frames",
                "atlas_bytes_served",
                "delta_log_bytes",
                "delta_log_days",
                "compactions",
                "anchor_day",
                "retries_sent",
                "auth_failures",
                "connections_rejected",
            ),
        )
        self.stats["anchor_day"] = -1
        #: spans the gateway records loop-side (decode / admission /
        #: dispatch) for FLAG_TRACE clients; TRACE_FETCH reads it
        self.trace = TraceCollector()
        self.tracer = Tracer(collector=self.trace)
        # server/relay backends record kernel.search spans themselves
        # (on the bridge thread) through the same tracer
        if getattr(self.backend, "supports_trace", False):
            self.backend.tracer = self.tracer
        #: query frames currently queued on (or running through) the
        #: single-thread bridge — the node's backlog signal for
        #: queue-depth shedding
        self._inflight_queries = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "NetworkGateway":
        """Bind the listeners on a background event-loop thread; returns
        once both endpoints are accepting (or raises what binding
        raised)."""
        if self._thread is not None:
            raise NetworkError("gateway already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="inano-gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        if not self._started.is_set():
            raise NetworkError("gateway failed to start in time")
        return self

    def __enter__(self) -> "NetworkGateway":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._bind())
        except BaseException as exc:
            self._startup_error = exc
            # a partial bind (TCP up, UDS failed) must not leak the
            # listeners that did bind
            with contextlib.suppress(Exception):
                loop.run_until_complete(self._teardown())
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._teardown())
            loop.close()

    async def _bind(self) -> None:
        if self._tcp_request is not None:
            host, port = self._tcp_request
            server = await asyncio.start_server(
                self._serve_conn, host, port, ssl=self.ssl_context
            )
            self.tcp_address = server.sockets[0].getsockname()[:2]
            self._servers.append(server)
        if self._uds_request is not None:
            server = await asyncio.start_unix_server(
                self._serve_conn, path=self._uds_request, ssl=self.ssl_context
            )
            self.uds_path = self._uds_request
            self._servers.append(server)

    async def _teardown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for conn in list(self._conns):
            with contextlib.suppress(Exception):
                conn.writer.close()
        self._conns.clear()
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        """Stop the listeners, close every connection, join the loop
        thread, and remove the UDS socket file. Idempotent."""
        if self._closed:
            return
        self._closed = True
        # _loop may already be closed when start() failed to bind
        if (
            self._loop is not None
            and self._thread is not None
            and not self._loop.is_closed()
        ):
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        self._bridge.shutdown(wait=False)
        if self.uds_path:
            with contextlib.suppress(OSError):
                os.unlink(self.uds_path)

    # -- delta broadcast ---------------------------------------------------

    def push_delta(self, delta) -> dict:
        """Apply one daily delta to the backend, then push the encoded
        broadcast to every subscribed connection. Thread-safe (callable
        from any thread while the loop runs). Returns ``{"day",
        "wire_bytes", "subscribers"}``."""
        if self._loop is None or self._closed:
            raise NetworkError("gateway is not running")
        future = asyncio.run_coroutine_threadsafe(
            self._push_delta(delta), self._loop
        )
        return future.result()

    async def _push_delta(self, delta, payload: bytes | None = None) -> dict:
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        if payload is None:
            payload = encode_delta(delta)  # one encode: shard fan-out + pushes
        self.stats["push_encode_us"] = (time.perf_counter() - t0) * 1e6
        day = await loop.run_in_executor(
            self._bridge, self.backend.apply_delta, delta, payload
        )
        self._delta_log.append((delta.new_day, payload))
        self._log_bytes += len(payload)
        if self._compaction_due(day):
            await self._compact()
        self.stats["delta_log_bytes"] = self._log_bytes
        self.stats["delta_log_days"] = len(self._delta_log)
        # one frame object for every subscriber. Fast path: a subscriber
        # whose writer is idle (empty queue) gets the frame written
        # straight into its transport here — a buffered non-blocking
        # write, no writer-task wakeup — which is what keeps the
        # 200-subscriber fan-out within ~2x of a single subscriber. A
        # subscriber with traffic in flight takes the queue path so its
        # writer task preserves frame order at the peer's own pace.
        frame = P.encode_frame(P.DELTA_PUSH, 0, payload)
        t1 = time.perf_counter()
        self.stats["push_drain_slowest_us"] = 0.0
        tracker = _PushTracker(self.stats, t1)
        delivered = 0
        for conn in list(self._conns):
            if not conn.subscribed:
                continue
            transport = conn.writer.transport
            # unsent = our queue + what the transport already buffered
            unsent = conn.queued_bytes + transport.get_write_buffer_size()
            if unsent > self.subscriber_buffer:
                self._drop_subscriber(conn, day)
                continue
            if conn.queue or conn.closing or transport.is_closing():
                if conn.enqueue(frame, tracker):
                    delivered += 1
                continue
            try:
                conn.writer.write(frame)
            except Exception:
                self._writer_failed(conn, tracker)
                continue
            self.stats["frames_out"] += 1
            self.stats["bytes_out"] += len(frame)
            delivered += 1
            if transport.get_write_buffer_size() == 0:
                tracker.done()  # flushed to the kernel synchronously
            else:
                # the transport buffered: a zero-frame sentinel makes
                # the writer task await drain and time the flush
                conn.enqueue(None, tracker)
        self.stats["push_enqueue_us"] = (time.perf_counter() - t1) * 1e6
        self.stats["deltas_pushed"] += 1
        self.stats["push_frames"] += delivered
        return {
            "day": day,
            "wire_bytes": len(payload),
            "subscribers": delivered,
        }

    def _drop_subscriber(self, conn: _Conn, day: int) -> None:
        """This subscriber's queue is over budget — it stopped reading.
        Unsubscribe it (the connection stays usable for request/reply)
        and queue a typed notice behind its backlog so a peer that
        resumes reading learns why the pushes stopped."""
        conn.subscribed = False
        self.stats["push_drops"] += 1
        conn.enqueue(
            P.encode_frame(
                P.SUB_DROPPED,
                0,
                P.encode_sub_dropped(day, "subscriber send queue over budget"),
            )
        )

    def _compaction_due(self, day: int) -> bool:
        if not hasattr(self.backend, "reanchor_bytes"):
            return False  # pre-built adapter without exact re-encode
        if self.compact_days is not None:
            base = self._anchor[0] if self._anchor is not None else None
            if base is None and self._delta_log:
                # no anchor captured yet: age against the log's start
                base = self._delta_log[0][0] - 1
            if base is not None and day - base >= self.compact_days:
                return True
        return (
            self.log_max_bytes is not None
            and self._log_bytes > self.log_max_bytes
        )

    async def _compact(self) -> None:
        """Fold the delta log into a fresh anchor: an exact encode of
        the backend's current atlas (format 2 — lossless, insertion
        order preserved) replaces anchor + covered log prefix, so the
        bit-for-bit convergence contract survives re-anchoring. Days at
        or below the new anchor are no longer bootstrappable
        (``_log_floor``)."""
        anchor_day, blob = await self._call(self.backend.reanchor_bytes)
        self._anchor = (anchor_day, blob)
        self._log_floor = anchor_day
        self._delta_log = [
            (d, p) for d, p in self._delta_log if d > anchor_day
        ]
        self._log_bytes = sum(len(p) for _, p in self._delta_log)
        self.stats["compactions"] += 1
        self.stats["anchor_day"] = anchor_day

    async def _ensure_anchor(self) -> tuple[int, bytes]:
        """The current-day bootstrap anchor, captured from the backend
        lazily and re-captured only when the backend advanced past what
        anchor + delta-log replay covers (e.g. a day published
        out-of-band rather than pushed). Compaction replaces it with an
        exact re-encode; in between, every bootstrap reuses the cached
        payload."""
        current = await self._call(lambda: self.backend.day)
        covered = -1 if self._anchor is None else self._anchor[0]
        if self._delta_log:
            covered = max(covered, self._delta_log[-1][0])
        if self._anchor is None or current > covered:
            self._anchor = await self._call(self.backend.atlas_bytes, None)
            self.stats["anchor_day"] = self._anchor[0]
        return self._anchor

    # -- connection handling -----------------------------------------------

    async def _serve_conn(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        if not self.admission.admit_connection(self.stats["connections_open"]):
            # refuse with a typed notice, never a silent RST: the peer
            # learns it hit the cap, not a mystery network failure
            self.stats["connections_rejected"] += 1
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.write(
                    P.encode_frame(
                        P.ERROR,
                        0,
                        P.encode_error(
                            P.E_OVERLOADED, "gateway connection limit reached"
                        ),
                    )
                )
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            return
        conn = _Conn(writer, peer=repr(peername))
        conn.task = asyncio.get_running_loop().create_task(
            self._conn_writer(conn)
        )
        self._conns.add(conn)
        self.stats["connections_total"] += 1
        self.stats["connections_open"] += 1
        decoder = P.FrameDecoder(max_frame=self.max_frame)
        try:
            pending: list[tuple[int, int, bytes]] = []
            deadline = asyncio.get_running_loop().time() + self.hello_timeout
            while True:
                while not pending:
                    if conn.hello_done:
                        timeout = None
                    else:
                        # hard deadline: trickling bytes must not extend it
                        timeout = deadline - asyncio.get_running_loop().time()
                        if timeout <= 0:
                            raise asyncio.TimeoutError
                    chunk = await asyncio.wait_for(
                        reader.read(_READ_CHUNK), timeout=timeout
                    )
                    if not chunk:
                        return  # clean EOF
                    self.stats["bytes_in"] += len(chunk)
                    pending.extend(decoder.feed(chunk))
                # Requests are answered strictly in arrival order; the
                # socket is not read again until this batch drains
                # (per-connection backpressure).
                for ftype, request_id, payload in pending:
                    self.stats["frames_in"] += 1
                    await self._handle_frame(conn, ftype, request_id, payload)
                pending.clear()
        except (asyncio.TimeoutError, TimeoutError):
            # best effort: the peer may already be gone
            with contextlib.suppress(Exception):
                await self._send_error(
                    conn, 0, P.E_MALFORMED, "no HELLO before timeout"
                )
        except ProtocolError as exc:
            # framing is unrecoverable: report and drop the connection
            with contextlib.suppress(Exception):
                await self._send_error(conn, 0, P.E_MALFORMED, str(exc))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conns.discard(conn)
            self.stats["connections_open"] -= 1
            # asyncio.CancelledError: loop teardown cancels us mid-wait
            with contextlib.suppress(Exception, asyncio.CancelledError):
                # flush queued replies (bounded) before closing
                await asyncio.wait_for(conn.drained.wait(), timeout=5.0)
            conn.closing = True
            if conn.task is not None:
                conn.task.cancel()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _conn_writer(self, conn: _Conn) -> None:
        """One per connection: drains its send queue to the socket.
        Frames enqueue without awaiting, so the broadcast path never
        blocks on a peer; this task alone absorbs the peer's pace."""
        while True:
            if not conn.queue:
                conn.space.set()
                conn.drained.set()
                conn.wake.clear()
                await conn.wake.wait()
                continue
            frame, tracker = conn.queue.popleft()
            if frame is not None:
                conn.queued_bytes -= len(frame)
                # count before the write so a request handler's reply
                # accounting is visible by the time the peer reads it
                self.stats["frames_out"] += 1
                self.stats["bytes_out"] += len(frame)
            try:
                if frame is not None:
                    conn.writer.write(frame)
                await conn.writer.drain()
            except asyncio.CancelledError:
                raise
            except Exception:
                if frame is not None:
                    self.stats["frames_out"] -= 1
                    self.stats["bytes_out"] -= len(frame)
                self._writer_failed(conn, tracker)
                return
            if conn.queued_bytes <= self.reply_buffer:
                conn.space.set()
            if tracker is not None:
                tracker.done()

    def _writer_failed(self, conn: _Conn, tracker: _PushTracker | None) -> None:
        """A write to this peer failed mid-drain: the connection is
        dead. Count every broadcast frame that will never arrive in
        ``push_errors``, drop the peer from the broadcast set, and abort
        the transport so the reader task unblocks too."""
        conn.closing = True
        conn.subscribed = False
        undelivered = [tracker] + [t for _, t in conn.queue]
        self.stats["push_errors"] += sum(
            1 for t in undelivered if t is not None
        )
        conn.queue.clear()
        conn.queued_bytes = 0
        conn.space.set()  # wakes any handler parked in _wait_space
        conn.drained.set()
        self._conns.discard(conn)
        with contextlib.suppress(Exception):
            conn.writer.close()

    async def _send(self, conn: _Conn, frame: bytes) -> None:
        if not conn.enqueue(frame):
            raise ConnectionError(f"connection {conn.peer} is closing")
        await self._wait_space(conn)

    async def _wait_space(self, conn: _Conn) -> None:
        """Structural backpressure at the send queue: the request
        handler (which alone reads the socket) parks here while the
        connection's unsent bytes exceed ``reply_buffer``, so a client
        that pipelines faster than it reads fills its own TCP window,
        not gateway memory. Single-threaded loop: no suspension point
        between the check and ``clear()``, so the writer task cannot
        slip a ``set()`` in between and deadlock."""
        while conn.queued_bytes > self.reply_buffer and not conn.closing:
            conn.space.clear()
            await conn.space.wait()
        if conn.closing:
            raise ConnectionError(f"connection {conn.peer} is closing")

    async def _send_error(
        self, conn: _Conn, request_id: int, code: int, message: str
    ) -> None:
        self.stats["errors_sent"] += 1
        await self._send(
            conn, P.encode_frame(P.ERROR, request_id, P.encode_error(code, message))
        )

    async def _call(self, fn, *args):
        """Run one backend call on the bridge thread."""
        return await asyncio.get_running_loop().run_in_executor(
            self._bridge, fn, *args
        )

    async def _timed_call(self, conn: _Conn, fn, *args):
        """One backend query on the bridge thread, returning ``(result,
        stats)``. ``stats`` is None unless the connection negotiated
        ``FLAG_STATS``; then it holds the request's wall time plus —
        when the backend exposes :meth:`kernel_sample` counters — the
        search-kernel deltas this request caused and the repair-class
        counts of the last applied day. Sampling happens on the bridge
        thread around the call itself, so the counters (which are not
        thread-safe) see exactly one reader and the deltas attribute
        cleanly to this request (the bridge serializes requests)."""
        if not conn.stats:
            return await self._call(fn, *args), None
        sample = getattr(self.backend, "kernel_sample", None)
        load_sample = getattr(self.backend, "load_sample", None)
        # last-broadcast timings, captured loop-side before the hop
        push_timings = (
            self.stats["push_encode_us"],
            self.stats["push_enqueue_us"],
            self.stats["push_drain_slowest_us"],
        )

        def run():
            before = sample() if sample is not None else None
            t0 = time.perf_counter()
            result = fn(*args)
            stats = {"elapsed_us": (time.perf_counter() - t0) * 1e6}
            if before is not None:
                counters0, _ = before
                counters1, repair = sample()
                stats["searches"] = counters1["searches"] - counters0["searches"]
                stats["cache_hits"] = counters1["hits"] - counters0["hits"]
                stats["search_us"] = (
                    counters1["search_us"] - counters0["search_us"]
                )
                for key in ("reused", "repaired", "replayed", "dirty"):
                    stats[key] = repair.get(key, 0)
            (
                stats["push_encode_us"],
                stats["push_enqueue_us"],
                stats["push_drain_us"],
            ) = push_timings
            if load_sample is not None:
                # backend load telemetry (queue depth / inflight /
                # request percentiles) rides the same frame — what the
                # heat layer and an autoscaler read remotely
                stats.update(load_sample())
            return result, stats

        return await asyncio.get_running_loop().run_in_executor(
            self._bridge, run
        )

    async def _send_stats(
        self, conn: _Conn, request_id: int, stats: dict | None
    ) -> None:
        if stats is None:
            return
        self.stats["stats_frames"] += 1
        await self._send(
            conn, P.encode_frame(P.STATS, request_id, P.encode_stats(stats))
        )

    async def _handle_frame(
        self, conn: _Conn, ftype: int, request_id: int, payload: bytes
    ) -> None:
        if not conn.hello_done:
            if ftype != P.HELLO:
                raise ProtocolError(
                    f"first frame must be HELLO, got {P.frame_name(ftype)}"
                )
            version, flags, token = P.decode_hello(payload)
            if version != P.PROTOCOL_VERSION:
                raise ProtocolError(f"client speaks protocol {version}")
            if self.auth_token is not None and token != self.auth_token:
                # typed refusal, then close: _serve_conn's teardown
                # flushes the queued ERROR before the socket drops
                self.stats["auth_failures"] += 1
                await self._send_error(
                    conn,
                    request_id,
                    P.E_UNAUTHORIZED,
                    "bad or missing auth token in HELLO",
                )
                raise ConnectionError("unauthorized HELLO")
            conn.hello_done = True
            conn.subscribed = bool(flags & P.FLAG_SUBSCRIBE)
            conn.stats = bool(flags & P.FLAG_STATS)
            conn.trace = bool(flags & P.FLAG_TRACE)
            day = await self._call(lambda: self.backend.day)
            # the caps byte confirms tracing back to the client; it is
            # appended only for FLAG_TRACE peers, so pre-trace clients
            # see the byte-identical classic WELCOME
            await self._send(
                conn,
                P.encode_frame(
                    P.WELCOME,
                    request_id,
                    P.encode_welcome(
                        day,
                        conn.subscribed,
                        self.backend.name,
                        caps=P.FLAG_TRACE if conn.trace else 0,
                    ),
                ),
            )
            return
        self.stats["requests"] += 1
        try:
            await self._dispatch(conn, ftype, request_id, payload)
        except (ProtocolError, CodecError) as exc:
            await self._send_error(conn, request_id, P.E_MALFORMED, str(exc))
        except AtlasError as exc:
            await self._send_error(conn, request_id, P.E_UNAVAILABLE, str(exc))
        except ReproError as exc:
            await self._send_error(conn, request_id, P.E_BACKEND, repr(exc))
        except Exception as exc:  # keep the connection serving
            await self._send_error(conn, request_id, P.E_BACKEND, repr(exc))

    async def _dispatch(
        self, conn: _Conn, ftype: int, request_id: int, payload: bytes
    ) -> None:
        if ftype in (P.PREDICT, P.PREDICT_BATCH, P.QUERY_INFO):
            # Admission guards *query* frames only: refusing bootstrap
            # or subscription traffic would strand a client with no
            # atlas at all. A refusal is a typed RETRY with the same
            # request id — never a silent drop or a hung socket.
            adm0 = time.perf_counter()
            refusal = self.admission.admit_request(
                conn.peer,
                asyncio.get_running_loop().time(),
                self._inflight_queries,
            )
            adm_us = (time.perf_counter() - adm0) * 1e6
            # admission runs before payload decode, so the trace
            # context (if any) is sniffed off the payload tail
            trace = P.peek_trace(payload) if conn.trace else None
            if trace is not None:
                self.tracer.record(
                    trace,
                    "gw.admission",
                    Tracer.now_us() - adm_us,
                    adm_us,
                    verdict="refused" if refusal is not None else "admitted",
                    **({"reason": refusal[1]} if refusal is not None else {}),
                )
            if refusal is not None:
                retry_after, reason = refusal
                self.stats["retries_sent"] += 1
                await self._send(
                    conn,
                    P.encode_frame(
                        P.RETRY,
                        request_id,
                        P.encode_retry(retry_after, reason),
                    ),
                )
                return
            self._inflight_queries += 1
            try:
                await self._dispatch_query(conn, ftype, request_id, payload)
            finally:
                self._inflight_queries -= 1
            return
        if ftype == P.ATLAS_FETCH:
            await self._dispatch_fetch(conn, request_id, payload)
        elif ftype == P.SUBSCRIBE:
            conn.subscribed = P.decode_subscribe(payload)
            day = await self._call(lambda: self.backend.day)
            await self._send(
                conn,
                P.encode_frame(
                    P.SUBSCRIBE_OK,
                    request_id,
                    P.encode_subscribe_ok(day, conn.subscribed),
                ),
            )
        elif ftype == P.TRACE_FETCH:
            if not conn.trace:
                await self._send_error(
                    conn,
                    request_id,
                    P.E_UNSUPPORTED,
                    "TRACE_FETCH requires FLAG_TRACE in HELLO",
                )
                return
            trace_id = P.decode_trace_fetch(payload)
            spans = list(self.trace.spans_of(trace_id))
            backend_spans = getattr(self.backend, "trace_spans", None)
            if backend_spans is not None:
                spans.extend(await self._call(backend_spans, trace_id))
            await self._send(
                conn,
                P.encode_frame(
                    P.TRACE_DUMP, request_id, P.encode_trace_dump(spans)
                ),
            )
        elif ftype == P.HELLO:
            raise ProtocolError("duplicate HELLO")
        else:
            await self._send_error(
                conn,
                request_id,
                P.E_UNSUPPORTED,
                f"unsupported frame {P.frame_name(ftype)}",
            )

    async def _dispatch_query(
        self, conn: _Conn, ftype: int, request_id: int, payload: bytes
    ) -> None:
        # Decode. FLAG_TRACE connections use the traced readers (which
        # accept — and strip — the optional trailing trace context);
        # classic connections keep the strict classic decoders, so a
        # trace field from a peer that never negotiated it still
        # closes the connection with a typed error.
        dec0 = time.perf_counter()
        trace = None
        if ftype == P.PREDICT:
            if conn.trace:
                src, dst, config, trace = P.decode_predict_request_traced(
                    payload
                )
            else:
                src, dst, config = P.decode_predict_request(payload)
            pairs, client = [(src, dst)], None
            call = self.backend.predict_batch
            ok_type = P.PREDICT_OK

            def encode_reply(paths):
                return P.encode_predict_reply(paths[0])

        elif ftype == P.PREDICT_BATCH:
            if conn.trace:
                pairs, config, client, trace = P.decode_batch_request_traced(
                    payload
                )
            else:
                pairs, config, client = P.decode_batch_request(payload)
            call = self.backend.predict_batch
            ok_type, encode_reply = P.PREDICT_BATCH_OK, P.encode_batch_reply
        elif ftype == P.QUERY_INFO:
            if conn.trace:
                pairs, config, client, trace = P.decode_query_request_traced(
                    payload
                )
            else:
                pairs, config, client = P.decode_query_request(payload)
            call = self.backend.query_batch
            ok_type, encode_reply = P.QUERY_INFO_OK, P.encode_query_reply
        else:  # unreachable: _dispatch routes only the three query types
            raise ProtocolError(f"not a query frame: {P.frame_name(ftype)}")
        dec_us = (time.perf_counter() - dec0) * 1e6
        args = (pairs, config, client)
        dispatch_span = None
        if trace is not None:
            self.tracer.record(
                trace,
                "gw.decode",
                Tracer.now_us() - dec_us,
                dec_us,
                frame=P.frame_name(ftype),
                pairs=len(pairs),
            )
            if getattr(self.backend, "supports_trace", False):
                # mint the dispatch span id up front so the backend's
                # spans (serve.route / shard.batch / kernel.search)
                # parent on it; the span itself is recorded after the
                # call, duration known
                dispatch_span = self.tracer.mint_id()
                args = args + ((trace[0], dispatch_span),)
        disp0 = time.perf_counter()
        start_us = Tracer.now_us() if trace is not None else 0.0
        result, stats = await self._timed_call(conn, call, *args)
        if trace is not None:
            self.tracer.record(
                trace,
                "gw.dispatch",
                start_us,
                (time.perf_counter() - disp0) * 1e6,
                span_id=dispatch_span,
                backend=self.backend.name,
            )
        await self._send(
            conn,
            P.encode_frame(ok_type, request_id, encode_reply(result)),
        )
        await self._send_stats(conn, request_id, stats)

    async def _dispatch_fetch(
        self, conn: _Conn, request_id: int, payload: bytes
    ) -> None:
        day = P.decode_atlas_fetch(payload)
        if day is None or day == self.stats["anchor_day"]:
            served_day, blob = await self._ensure_anchor()
        else:
            if self._log_floor is not None and day < self._log_floor:
                raise AtlasError(
                    f"day {day} was compacted away (anchor floor "
                    f"{self._log_floor}); bootstrap the current day"
                )
            served_day, blob = await self._call(
                self.backend.atlas_bytes, day
            )
        self.stats["atlas_bytes_served"] += len(blob)
        # catch-up replay: deltas pushed after the served anchor
        # follow the reply immediately, so the bootstrap lands on
        # the backend's current day bit for bit (the anchor codec
        # may quantize; the delta codec does not). Anchor and
        # suffix enqueue with no suspension point in between, so a
        # concurrent push cannot interleave mid-replay — it lands
        # after the suffix, strictly newer, and applies on top.
        frames = [P.encode_frame(P.ATLAS, request_id, blob)]
        for new_day, delta_payload in self._delta_log:
            if new_day > served_day:
                frames.append(
                    P.encode_frame(P.DELTA_PUSH, 0, delta_payload)
                )
        for frame in frames:
            if not conn.enqueue(frame):
                raise ConnectionError(
                    f"connection {conn.peer} is closing"
                )
        await self._wait_space(conn)
