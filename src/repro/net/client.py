"""The networked iNano client: bootstrap or delegate over one socket.

Section 5's future work — "support remote queries so that only one
local host need download the atlas" — gave us :class:`QueryAgent`
(in-process delegation). :class:`NetworkClient` takes the same two
deployment modes across a real transport, speaking
:mod:`repro.net.protocol` frames to a
:class:`~repro.net.gateway.NetworkGateway` over TCP or a unix-domain
socket:

* **delegate mode** (the default after :meth:`connect_tcp` /
  :meth:`connect_uds`): the client holds no atlas; ``predict`` /
  ``query_batch`` ship PREDICT/QUERY_INFO frames and the gateway
  answers from its backend — exactly what a ``QueryAgent`` caller gets
  locally, for hosts that are not even on the agent's node.
* **bootstrap mode** (:meth:`bootstrap`): the client fetches the full
  encoded atlas over ``ATLAS_FETCH``, decodes it into a private
  :class:`~repro.runtime.runtime.AtlasRuntime`, subscribes to delta
  pushes, and from then on answers every query locally from its own
  compiled core. Daily ``DELTA_PUSH`` frames (the ``INDB`` broadcast
  codec) are applied through ``runtime.apply_delta`` — the same
  in-place CSR patch + warm-start repair a co-located consumer runs —
  so a bootstrapped remote client stays bit-for-bit identical to a
  client sitting next to the server, across daily deltas and monthly
  recompiles alike.

Replies are matched to pipelined requests by id; ``DELTA_PUSH`` frames
may interleave with replies at any frame boundary and are applied (or
counted stale) on arrival. :meth:`pipeline_predict` exposes raw
pipelining — send N requests, then drain N replies — which is where
the wire amortizes its round trip (the bench's pipelined-QPS sweep).
A ``SUB_DROPPED`` frame — the gateway unsubscribed this connection
because it stopped draining pushes — flips ``subscribed`` off and is
counted in ``sub_dropped`` (the connection keeps answering queries).
By default a bootstrapped client that wants pushes again must
re-bootstrap, since days were missed; constructing with
``auto_resubscribe=True`` instead triggers :meth:`resubscribe` at the
next idle point — re-subscribe, re-anchor the local runtime on a
fresh ``ATLAS_FETCH``, and carry on bit-for-bit.

A gateway running admission control answers over-rate or shed queries
with a typed ``RETRY`` frame (retry-after hint). The client honors it
transparently: the request is re-sent after a capped exponential
backoff that never waits less than the gateway's hint (``retries``
counts the waits; ``max_retries`` consecutive sheds of one request
raise :class:`~repro.errors.NetworkError`). Connecting to a TLS+auth
gateway takes ``ssl_context=`` on the connect classmethods and
``auth_token=`` (sent in the HELLO under ``FLAG_AUTH``).

A ``push_hook`` callable diverts raw ``DELTA_PUSH`` payloads instead
of applying them locally — the relay tier
(:class:`~repro.net.relay.RelayGateway`) uses this to re-broadcast the
exact upstream bytes downstream.

Constructing with ``stats=True`` negotiates the ``FLAG_STATS``
capability: the gateway trails every successful delegate-mode query
reply with a typed STATS frame (backend wall time, the search-kernel
counter deltas the request caused, and the repair-class counts of the
last applied day); the latest decoded frame is kept on
``client.last_stats``.

Constructing with ``trace=True`` negotiates ``FLAG_TRACE`` instead:
the client mints a ``(trace_id, root_span_id)`` context per sampled
delegate-mode query (``trace_sample`` sets the rate; ``trace_seed``
makes the sampling deterministic), appends it to the request payload,
and records a ``client.request`` root span around the round trip.
:meth:`fetch_trace` pulls the gateway-side spans (decode, admission,
dispatch, routing, worker, kernel) over ``TRACE_FETCH`` and merges
them with the local root; :meth:`span_tree` assembles the
parent-linked tree.
"""

from __future__ import annotations

import random
import socket
import time

from repro.atlas.serialization import decode_atlas, decode_delta
from repro.client.query import PathInfo, combine_batches
from repro.core.predictor import PredictedPath, PredictorConfig
from repro.errors import (
    ClientError,
    NetworkError,
    ProtocolError,
    RemoteError,
)
from repro.net import protocol as P
from repro.obs.trace import Span, TraceCollector, Tracer, build_tree
from repro.runtime import AtlasRuntime

__all__ = ["NetworkClient"]

_RECV_CHUNK = 64 * 1024

#: reply types the gateway trails with a STATS frame when negotiated
_STATS_REPLIES = frozenset({P.PREDICT_OK, P.PREDICT_BATCH_OK, P.QUERY_INFO_OK})

#: exponential-backoff floor and ceiling for RETRY re-sends (seconds);
#: the gateway's retry-after hint raises the floor per attempt
_RETRY_BASE = 0.05
_RETRY_CAP = 2.0


class _Retry(Exception):
    """Internal: the gateway shed this request with a RETRY frame."""

    def __init__(self, retry_after_s: float, reason: str) -> None:
        super().__init__(reason)
        self.retry_after_s = retry_after_s
        self.reason = reason


class NetworkClient:
    """A remote host talking to a :class:`NetworkGateway`; see module
    docstring for the delegate / bootstrap split."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        endpoint: str,
        timeout: float = 30.0,
        max_frame: int = P.DEFAULT_MAX_FRAME,
        config: PredictorConfig | None = None,
        subscribe: bool = False,
        stats: bool = False,
        trace: bool = False,
        trace_sample: float = 1.0,
        trace_seed: int | None = None,
        push_hook=None,
        auth_token: str | None = None,
        auto_resubscribe: bool = False,
        max_retries: int = 6,
    ) -> None:
        self._sock = sock
        self.endpoint = endpoint
        self.timeout = timeout
        self.default_config = config or PredictorConfig.inano()
        self._decoder = P.FrameDecoder(max_frame=max_frame)
        self._frames: list[tuple[int, int, bytes]] = []
        self._last_id = 0
        self._closed = False
        self.runtime: AtlasRuntime | None = None
        self.subscribed = False
        self.server_day: int | None = None
        self.backend_name: str | None = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.deltas_applied = 0
        self.pushes_stale = 0
        #: gateway unsubscribed us (send queue over budget); the last
        #: SUB_DROPPED reason string is kept for diagnostics
        self.sub_dropped = 0
        self.drop_reason: str | None = None
        #: opt-in: recover from SUB_DROPPED at the next idle point by
        #: re-subscribing and re-anchoring (see :meth:`resubscribe`)
        self.auto_resubscribe = bool(auto_resubscribe)
        self._resubscribe_pending = False
        self.resubscribes = 0
        #: shared secret for a gateway running with ``auth_token=``
        self._auth_token = auth_token
        #: RETRY handling: consecutive sheds of one request before the
        #: client gives up, and how many backoff waits it has taken
        self.max_retries = int(max_retries)
        self.retries = 0
        #: when set, raw DELTA_PUSH payloads go to this callable instead
        #: of the local runtime (relay mode)
        self._push_hook = push_hook
        #: FLAG_STATS negotiated: the gateway follows every successful
        #: delegate-mode query reply with a typed STATS frame; the
        #: latest decoded one is kept here
        self.stats_enabled = bool(stats)
        self.last_stats: dict | None = None
        self.stats_frames = 0
        #: FLAG_TRACE negotiated: sampled delegate-mode queries carry a
        #: trace context; ``server_caps`` echoes what the gateway
        #: confirmed in its WELCOME caps byte
        self.trace_enabled = bool(trace)
        self.server_caps = 0
        self.trace_collector = TraceCollector()
        self.tracer = Tracer(
            collector=self.trace_collector,
            sample_rate=float(trace_sample),
            rng=random.Random(trace_seed) if trace_seed is not None else None,
        )
        #: trace id of the most recent sampled request (None until one
        #: is minted) — the default argument of :meth:`fetch_trace`
        self.last_trace_id: int | None = None
        try:
            self._hello(subscribe)
        except BaseException:
            # a failed handshake must not leak the connected socket —
            # the caller never receives an object to close
            self.close()
            raise

    # -- connecting --------------------------------------------------------

    @classmethod
    def connect_tcp(
        cls,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        ssl_context=None,
        server_hostname: str | None = None,
        **kwargs,
    ) -> "NetworkClient":
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if ssl_context is not None:
            sock = ssl_context.wrap_socket(
                sock, server_hostname=server_hostname or host
            )
        return cls(
            sock, endpoint=f"tcp://{host}:{port}", timeout=timeout, **kwargs
        )

    @classmethod
    def connect_uds(
        cls, path: str, *, timeout: float = 30.0, ssl_context=None, **kwargs
    ) -> "NetworkClient":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(path)
        if ssl_context is not None:
            sock = ssl_context.wrap_socket(sock)
        return cls(sock, endpoint=f"uds://{path}", timeout=timeout, **kwargs)

    def _hello(self, subscribe: bool) -> None:
        flags = P.FLAG_SUBSCRIBE if subscribe else 0
        if self.stats_enabled:
            flags |= P.FLAG_STATS
        if self.trace_enabled:
            flags |= P.FLAG_TRACE
        payload = self._request(
            P.HELLO, P.encode_hello(flags, self._auth_token), P.WELCOME
        )
        if self.trace_enabled:
            # caps-aware read: an old gateway answers the classic
            # 3-field WELCOME (caps 0) and this client simply keeps
            # its requests untraced
            day, subscribed, backend, caps = P.decode_welcome_caps(payload)
            self.server_caps = caps
        else:
            day, subscribed, backend = P.decode_welcome(payload)
        self.server_day = day
        self.subscribed = subscribed
        self.backend_name = backend

    @property
    def mode(self) -> str:
        """``"local"`` once bootstrapped, ``"delegate"`` before."""
        return "local" if self.runtime is not None else "delegate"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetworkClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing -----------------------------------------------------

    def _send_frame(self, ftype: int, request_id: int, payload: bytes) -> None:
        if self._closed:
            raise NetworkError("client is closed")
        frame = P.encode_frame(ftype, request_id, payload)
        # reset the timeout: a prior poll_updates may have left a
        # near-zero one, and a timeout mid-sendall would desync the wire
        self._sock.settimeout(self.timeout)
        try:
            self._sock.sendall(frame)
        except (socket.timeout, TimeoutError) as exc:
            raise NetworkError(
                f"send to {self.endpoint} timed out after {self.timeout}s"
            ) from exc
        self.bytes_sent += len(frame)

    def _next_frame(self, deadline: float | None):
        """One frame off the wire (buffered frames first); ``None`` on
        deadline expiry, raises on EOF."""
        while not self._frames:
            if deadline is None:
                self._sock.settimeout(self.timeout)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except (socket.timeout, TimeoutError):
                if deadline is None:
                    raise NetworkError(
                        f"no reply from {self.endpoint} within {self.timeout}s"
                    ) from None
                return None
            if not chunk:
                raise NetworkError(f"{self.endpoint} closed the connection")
            self.bytes_received += len(chunk)
            self._frames.extend(self._decoder.feed(chunk))
        return self._frames.pop(0)

    def _collect(self, request_id: int, expect: int) -> bytes:
        """Read until ``request_id``'s reply arrives, applying any
        interleaved delta pushes and discarding replies to abandoned
        earlier requests on the way (a pipeline that raised mid-drain
        leaves its tail replies in flight; ids are monotonic, so
        anything below ``request_id`` is stale, not desync)."""
        while True:
            frame = self._next_frame(None)
            ftype, got_id, payload = frame
            if ftype == P.DELTA_PUSH:
                self._on_push(payload)
                continue
            if ftype == P.SUB_DROPPED:
                self._on_sub_dropped(payload)
                continue
            if ftype == P.STATS and got_id < request_id:
                continue  # stale stats for an abandoned request
            if got_id and got_id < request_id:
                continue  # stale reply/error for an abandoned request
            if ftype == P.RETRY and got_id == request_id:
                retry_after_s, reason = P.decode_retry(payload)
                raise _Retry(retry_after_s, reason)
            if ftype == P.ERROR:
                code, message = P.decode_error(payload)
                raise RemoteError(code, message)
            if ftype == expect and got_id == request_id:
                if self.stats_enabled and expect in _STATS_REPLIES:
                    self._read_stats(request_id)
                return payload
            raise ProtocolError(
                f"expected {P.frame_name(expect)}#{request_id}, got "
                f"{P.frame_name(ftype)}#{got_id}"
            )

    def _read_stats(self, request_id: int) -> None:
        """Consume the STATS frame trailing a successful query reply
        (already in flight — the gateway writes it right behind the
        reply), applying any delta pushes interleaved at a frame
        boundary on the way."""
        while True:
            ftype, got_id, payload = self._next_frame(None)
            if ftype == P.DELTA_PUSH:
                self._on_push(payload)
                continue
            if ftype == P.SUB_DROPPED:
                self._on_sub_dropped(payload)
                continue
            if ftype == P.STATS:
                self.last_stats = P.decode_stats(payload)
                self.stats_frames += 1
                if got_id == request_id:
                    return
                continue  # stale stats for an abandoned request
            raise ProtocolError(
                f"expected STATS#{request_id}, got "
                f"{P.frame_name(ftype)}#{got_id}"
            )

    def _take_id(self) -> int:
        self._last_id += 1
        return self._last_id

    def _request(self, ftype: int, payload: bytes, expect: int) -> bytes:
        """One request/reply round trip. A RETRY reply (admission shed)
        re-sends with a fresh id after a capped exponential backoff
        that never undercuts the gateway's retry-after hint."""
        attempt = 0
        while True:
            request_id = self._take_id()
            self._send_frame(ftype, request_id, payload)
            try:
                return self._collect(request_id, expect)
            except _Retry as shed:
                attempt += 1
                if attempt > self.max_retries:
                    raise NetworkError(
                        f"{P.frame_name(ftype)} shed {attempt} times by "
                        f"{self.endpoint}: {shed.reason}"
                    ) from None
                self._backoff(attempt, shed.retry_after_s)

    def _backoff(self, attempt: int, hint_s: float) -> None:
        delay = min(
            _RETRY_CAP,
            max(hint_s, _RETRY_BASE * (2 ** (attempt - 1))),
        )
        self.retries += 1
        time.sleep(delay)

    # -- tracing -----------------------------------------------------------

    def _start_trace(self) -> tuple[int, int] | None:
        """A fresh ``(trace_id, root_span_id)`` for this request, or
        None when tracing is off, the gateway didn't confirm the
        capability, or the sampler skipped this request. A RETRY
        re-send reuses the same payload, so the context survives
        admission sheds."""
        if not (self.trace_enabled and self.server_caps & P.FLAG_TRACE):
            return None
        ctx = self.tracer.start_trace()
        if ctx is not None:
            self.last_trace_id = ctx[0]
        return ctx

    def _record_root(
        self, ctx: tuple[int, int], name: str, start_us: float, t0: float, **tags
    ) -> None:
        self.tracer.record(
            (ctx[0], 0),
            name,
            start_us,
            (time.perf_counter() - t0) * 1e6,
            span_id=ctx[1],
            **tags,
        )

    def fetch_trace(self, trace_id: int | None = None) -> list[Span]:
        """Every span of one trace: the gateway's (and its backend's)
        spans pulled over ``TRACE_FETCH``/``TRACE_DUMP``, merged with
        the spans this client recorded locally. Defaults to the most
        recent sampled request."""
        if trace_id is None:
            trace_id = self.last_trace_id
        if trace_id is None:
            raise ClientError("no traced request yet")
        if not (self.trace_enabled and self.server_caps & P.FLAG_TRACE):
            raise ClientError("tracing was not negotiated with the gateway")
        payload = self._request(
            P.TRACE_FETCH, P.encode_trace_fetch(trace_id), P.TRACE_DUMP
        )
        spans = {
            s.span_id: s
            for s in self.trace_collector.spans_of(trace_id)
        }
        for fields in P.decode_trace_dump(payload):
            spans.setdefault(fields["span_id"], Span(**fields))
        return sorted(spans.values(), key=lambda s: s.start_us)

    def span_tree(self, trace_id: int | None = None) -> list[dict]:
        """:meth:`fetch_trace` assembled into a parent-linked forest
        (see :func:`repro.obs.trace.build_tree`)."""
        return build_tree(self.fetch_trace(trace_id))

    # -- bootstrap + updates -----------------------------------------------

    def bootstrap(self, day: int | None = None, subscribe: bool = True):
        """Fetch the full atlas over the wire and go local: decode into
        a private runtime (own compiled core, own predictor pool) and —
        by default — subscribe to the gateway's delta pushes. Returns
        the decoded :class:`~repro.atlas.model.Atlas`.

        Subscribing happens *before* the fetch, so no delta can fall
        into the gap between them: a push arriving pre-runtime is
        dropped as stale (the fetched atlas already includes it). The
        gateway may answer the fetch with an older *anchor* payload
        followed by catch-up delta pushes (the anchor codec quantizes;
        the delta codec does not) — the closing SUBSCRIBE round trip
        below is an ordered fence past those, so this returns with the
        runtime already on the gateway's current day."""
        if self.runtime is not None:
            raise ClientError("client already bootstrapped")
        if subscribe and not self.subscribed:
            self.subscribe(True)
        blob = self._request(P.ATLAS_FETCH, P.encode_atlas_fetch(day), P.ATLAS)
        self.runtime = AtlasRuntime(decode_atlas(blob))
        # fence: any catch-up pushes precede this reply on the wire and
        # are applied while collecting it
        self.subscribe(self.subscribed)
        return self.runtime.atlas

    def subscribe(self, on: bool = True) -> int:
        """Toggle delta pushes for this connection; returns the
        gateway's current day."""
        payload = self._request(
            P.SUBSCRIBE, P.encode_subscribe(on), P.SUBSCRIBE_OK
        )
        day, subscribed = P.decode_subscribe_ok(payload)
        self.server_day = day
        self.subscribed = subscribed
        return day

    def fetch_atlas_bytes(self, day: int | None = None) -> bytes:
        """The raw encoded atlas anchor, verbatim off the wire — no
        decode, no runtime. Relay gateways re-serve these exact bytes
        downstream so every tier anchors on the same payload."""
        return self._request(P.ATLAS_FETCH, P.encode_atlas_fetch(day), P.ATLAS)

    def _on_sub_dropped(self, payload: bytes) -> None:
        day, reason = P.decode_sub_dropped(payload)
        self.subscribed = False
        self.server_day = day
        self.sub_dropped += 1
        self.drop_reason = reason
        if self.auto_resubscribe:
            # SUB_DROPPED can arrive mid-request (interleaved with a
            # reply drain), where issuing nested requests would tangle
            # the wire; act at the next idle point instead.
            self._resubscribe_pending = True

    def _maybe_resubscribe(self) -> None:
        if not self._resubscribe_pending or self._closed:
            return
        self._resubscribe_pending = False
        self.resubscribe()

    def resubscribe(self) -> int | None:
        """Recover push delivery after a SUB_DROPPED: re-subscribe and —
        in bootstrap mode — re-anchor the local runtime with a fresh
        ``ATLAS_FETCH`` (days were missed while unsubscribed; the push
        chain cannot bridge the gap). Bit-for-bit safe: the fresh
        anchor plus the gateway's catch-up replay is exactly the
        bootstrap contract. Returns the local day (or the gateway's, in
        delegate mode)."""
        old_runtime = self.runtime
        # Pushes interleaved before the new anchor arrives are already
        # folded into it (the gateway applies, then broadcasts); with
        # no runtime installed they count stale instead of tripping the
        # gap check against the stale pre-drop day.
        self.runtime = None
        try:
            self.subscribe(True)
            if old_runtime is not None:
                blob = self._request(
                    P.ATLAS_FETCH, P.encode_atlas_fetch(None), P.ATLAS
                )
                self.runtime = AtlasRuntime(decode_atlas(blob))
                # fence: catch-up replay frames precede this reply and
                # apply onto the fresh runtime while collecting it
                self.subscribe(True)
        except BaseException:
            if self.runtime is None:
                self.runtime = old_runtime
            raise
        self.resubscribes += 1
        return self.day

    def _on_push(self, payload: bytes) -> None:
        if self._push_hook is not None:
            self._push_hook(payload)
            return
        if self.runtime is None:
            self.pushes_stale += 1  # nothing to apply it to
            return
        delta = decode_delta(payload)
        current = self.runtime.atlas.day
        if delta.new_day <= current:
            self.pushes_stale += 1  # raced a fetch that already includes it
            return
        if delta.base_day != current:
            raise ClientError(
                f"delta push {delta.base_day}->{delta.new_day} does not "
                f"extend local day {current}; re-bootstrap required"
            )
        self.runtime.apply_delta(delta)
        self.deltas_applied += 1
        self.server_day = delta.new_day

    def poll_updates(self, max_wait: float = 0.0) -> int:
        """Drain pending frames for up to ``max_wait`` seconds, applying
        delta pushes; returns how many were applied. Only pushes are
        legal here (no request is outstanding) — which also makes this
        the safe point where a pending auto-resubscribe runs."""
        self._maybe_resubscribe()
        deadline = time.monotonic() + max_wait
        applied = 0
        while True:
            try:
                frame = self._next_frame(deadline)
            except NetworkError:
                if self._closed:
                    return applied
                raise
            if frame is None:
                return applied
            ftype, got_id, payload = frame
            if ftype == P.SUB_DROPPED:
                self._on_sub_dropped(payload)
                self._maybe_resubscribe()
                continue
            if ftype != P.DELTA_PUSH:
                if got_id and got_id <= self._last_id:
                    continue  # stale reply for an abandoned request
                raise ProtocolError(
                    f"unexpected {P.frame_name(ftype)} while idle"
                )
            before = self.deltas_applied
            self._on_push(payload)
            applied += self.deltas_applied - before

    def wait_for_day(self, day: int, timeout: float = 10.0) -> int:
        """Poll pushes until the local runtime reaches ``day``."""
        if self.runtime is None:
            raise ClientError("bootstrap() before waiting on pushed days")
        deadline = time.monotonic() + timeout
        while self.runtime.atlas.day < day:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise NetworkError(
                    f"day {day} not pushed within {timeout}s "
                    f"(local day {self.runtime.atlas.day})"
                )
            self.poll_updates(max_wait=min(0.2, remaining))
        return self.runtime.atlas.day

    @property
    def day(self) -> int | None:
        """The atlas day queries answer from (local runtime once
        bootstrapped, else the gateway's last reported day)."""
        if self.runtime is not None:
            return self.runtime.atlas.day
        return self.server_day

    # -- queries -----------------------------------------------------------

    def _predictor(self, config: PredictorConfig | None):
        return self.runtime.pool.predictor(config or self.default_config)

    def predict(
        self, src: int, dst: int, config: PredictorConfig | None = None
    ) -> PredictedPath | None:
        """One-way prediction (local in bootstrap mode, one frame
        round trip in delegate mode)."""
        if self.runtime is not None:
            return self._predictor(config).predict_batch([(src, dst)])[0]
        ctx = self._start_trace()
        start_us, t0 = Tracer.now_us(), time.perf_counter()
        payload = self._request(
            P.PREDICT,
            P.encode_predict_request(src, dst, config, trace=ctx),
            P.PREDICT_OK,
        )
        if ctx is not None:
            self._record_root(
                ctx, "client.request", start_us, t0, frame="PREDICT"
            )
        return P.decode_predict_reply(payload)

    def predict_batch(
        self,
        pairs,
        config: PredictorConfig | None = None,
        client: str | None = None,
    ) -> list[PredictedPath | None]:
        pairs = list(pairs)
        if self.runtime is not None:
            if client is not None:
                raise ClientError(
                    "client-scoped queries are delegate-mode only"
                )
            return self._predictor(config).predict_batch(pairs)
        ctx = self._start_trace()
        start_us, t0 = Tracer.now_us(), time.perf_counter()
        payload = self._request(
            P.PREDICT_BATCH,
            P.encode_batch_request(pairs, config, client, trace=ctx),
            P.PREDICT_BATCH_OK,
        )
        if ctx is not None:
            self._record_root(
                ctx,
                "client.request",
                start_us,
                t0,
                frame="PREDICT_BATCH",
                pairs=len(pairs),
            )
        paths = P.decode_batch_reply(payload)
        if len(paths) != len(pairs):
            raise ProtocolError(
                f"{len(paths)} paths answered for {len(pairs)} pairs"
            )
        return paths

    def query_batch(
        self,
        pairs,
        config: PredictorConfig | None = None,
        client: str | None = None,
    ) -> list[PathInfo | None]:
        """Two-way queries; shares ``combine_batches``'s contract with
        every other query surface, so results are bit-for-bit a
        co-located client's."""
        pairs = list(pairs)
        if self.runtime is not None:
            if client is not None:
                raise ClientError(
                    "client-scoped queries are delegate-mode only"
                )
            return combine_batches(
                pairs,
                self._predictor(config).predict_batch,
                self.runtime.atlas.day,
            )
        ctx = self._start_trace()
        start_us, t0 = Tracer.now_us(), time.perf_counter()
        payload = self._request(
            P.QUERY_INFO,
            P.encode_query_request(pairs, config, client, trace=ctx),
            P.QUERY_INFO_OK,
        )
        if ctx is not None:
            self._record_root(
                ctx,
                "client.request",
                start_us,
                t0,
                frame="QUERY_INFO",
                pairs=len(pairs),
            )
        infos = P.decode_query_reply(payload)
        if len(infos) != len(pairs):
            raise ProtocolError(
                f"{len(infos)} infos answered for {len(pairs)} pairs"
            )
        return infos

    def query(
        self, src: int, dst: int, config: PredictorConfig | None = None
    ) -> PathInfo | None:
        return self.query_batch([(src, dst)], config)[0]

    query_or_none = query

    def pipeline_predict(
        self, pairs, config: PredictorConfig | None = None
    ) -> list[PredictedPath | None]:
        """Raw wire pipelining: ship one PREDICT frame per pair without
        waiting, then drain the replies in order. Delegate mode only —
        this is the transport-level throughput primitive the bench
        sweeps."""
        if self.runtime is not None:
            raise ClientError("pipeline_predict is delegate-mode only")
        pairs = list(pairs)
        ids = []
        ctxs = []
        sent_at = []
        for src, dst in pairs:
            ctx = self._start_trace()
            request_id = self._take_id()
            self._send_frame(
                P.PREDICT,
                request_id,
                P.encode_predict_request(src, dst, config, trace=ctx),
            )
            ids.append(request_id)
            ctxs.append(ctx)
            sent_at.append(
                None if ctx is None else (Tracer.now_us(), time.perf_counter())
            )
        # Drain every original id first, marking shed slots; re-sending
        # mid-drain would mint ids above the still-pending tail and the
        # monotonic stale-discard would throw those replies away.
        out: list = [None] * len(pairs)
        shed: list[tuple[int, float]] = []
        for i, request_id in enumerate(ids):
            try:
                out[i] = P.decode_predict_reply(
                    self._collect(request_id, P.PREDICT_OK)
                )
                if ctxs[i] is not None:
                    start_us, t0 = sent_at[i]
                    self._record_root(
                        ctxs[i],
                        "client.request",
                        start_us,
                        t0,
                        frame="PREDICT",
                        pipelined=True,
                    )
            except _Retry as retry:
                shed.append((i, retry.retry_after_s))
        for attempt, (i, hint_s) in enumerate(shed, start=1):
            # sequential re-requests; _request layers its own backoff on
            # any further sheds (the trace context, if any, rides along)
            self._backoff(min(attempt, 4), hint_s)
            src, dst = pairs[i]
            out[i] = P.decode_predict_reply(
                self._request(
                    P.PREDICT,
                    P.encode_predict_request(src, dst, config, trace=ctxs[i]),
                    P.PREDICT_OK,
                )
            )
        return out
