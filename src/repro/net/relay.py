"""Relay tiers: gateways that re-serve an upstream gateway.

The paper ships one daily delta to "millions of users"; a single origin
cannot drain that fan-out alone. :class:`RelayGateway` is the
distribution-tree node — origin → region relays → clients — built
entirely from the two existing wire roles:

* **upstream**, it is a :class:`~repro.net.client.NetworkClient`: it
  fetches the origin's anchor payload (verbatim bytes, no re-encode),
  subscribes to delta pushes, and applies each pushed ``INDB`` payload
  to its own :class:`~repro.runtime.runtime.AtlasRuntime`;
* **downstream**, it is a full :class:`~repro.net.gateway.NetworkGateway`
  over that runtime: it answers PREDICT / QUERY_INFO / ATLAS_FETCH and
  re-broadcasts every upstream push **bit-for-bit** — the same anchor
  bytes seed its bootstrap replies and the same delta payloads fan out
  to its subscribers, so a client behind any number of relay tiers
  lands on exactly the origin backend's atlas (the equivalence suite
  pins a 2-deep chain against the co-located oracle).

Convergence needs no relay-specific protocol: the upstream subscription
opens *before* the anchor fetch (no missed-push window), buffered
catch-up pushes roll the relay to the origin's current day before it
starts serving, and from then on one poller thread applies + re-fans
each push in upstream order. Compaction works unchanged — the relay's
runtime atlas *is* the origin's client-visible atlas, so an exact
re-encode of it is a valid fresh anchor for the tier below.
"""

from __future__ import annotations

import asyncio
import threading

from repro.atlas.serialization import (
    decode_atlas,
    decode_delta,
    encode_atlas,
)
from repro.client.query import combine_batches
from repro.errors import AtlasError, NetworkError, ProtocolError
from repro.net.client import NetworkClient
from repro.net.gateway import NetworkGateway
from repro.runtime import AtlasRuntime

__all__ = ["RelayGateway"]


class _RelayBackend:
    """The relay's serving state: one private runtime rolled forward by
    upstream pushes. Mirrors ``_ServerBackend``'s query surface (shared
    pool, no client scoping) — all calls ride the gateway's bridge
    thread."""

    name = "relay"
    #: same trace contract as ``_ServerBackend``: the kernel runs in
    #: this process, so a traced query gets an exact ``kernel.search``
    #: span through the gateway-assigned tracer
    supports_trace = True
    tracer = None  # set by the gateway

    def __init__(self, runtime: AtlasRuntime) -> None:
        self.runtime = runtime

    def _traced_run(self, fn, trace):
        from repro.net.gateway import _ServerBackend

        return _ServerBackend._traced_run(self, fn, trace)

    @property
    def _runtime(self) -> AtlasRuntime:  # _ServerBackend._traced_run reads it
        return self.runtime

    @property
    def day(self) -> int:
        return self.runtime.atlas.day

    def predict_batch(self, pairs, config, client, trace=None):
        if client is not None:
            raise ProtocolError(
                "client-scoped queries need the origin's service backend"
            )
        run = lambda: self.runtime.pool.predictor(config).predict_batch(
            list(pairs)
        )
        if trace is None or self.tracer is None:
            return run()
        return self._traced_run(run, trace)

    def query_batch(self, pairs, config, client, trace=None):
        if client is not None:
            raise ProtocolError(
                "client-scoped queries need the origin's service backend"
            )
        run = lambda: combine_batches(
            pairs,
            self.runtime.pool.predictor(config).predict_batch,
            self.runtime.atlas.day,
        )
        if trace is None or self.tracer is None:
            return run()
        return self._traced_run(run, trace)

    def atlas_bytes(self, day: int | None) -> tuple[int, bytes]:
        """Only the current lineage is servable (the relay holds no
        published history); an exact encode of the runtime is always a
        valid anchor for it."""
        current = self.runtime.atlas.day
        if day is not None and day != current:
            raise AtlasError(
                f"relay serves day {current}, cannot bootstrap day {day}"
            )
        return current, encode_atlas(self.runtime.atlas, exact=True)

    def reanchor_bytes(self) -> tuple[int, bytes]:
        return self.runtime.atlas.day, encode_atlas(
            self.runtime.atlas, exact=True
        )

    def apply_delta(self, delta, payload: bytes) -> int:
        if self.runtime.atlas.day < delta.new_day:
            self.runtime.apply_delta(delta)
        return self.runtime.atlas.day

    def kernel_sample(self):
        pool = self.runtime.pool
        return pool.kernel_stats(), dict(pool.last_repair)


class RelayGateway(NetworkGateway):
    """A gateway bootstrapped from — and kept current by — an upstream
    gateway. Construct with the upstream address plus this tier's own
    listen endpoints; :meth:`start` begins serving downstream and
    relaying pushes. See the module docstring for the convergence
    argument."""

    def __init__(
        self,
        *,
        upstream_tcp: tuple[str, int] | None = None,
        upstream_uds: str | None = None,
        upstream_timeout: float = 30.0,
        tcp: tuple[str, int] | None = None,
        uds: str | None = None,
        **kwargs,
    ) -> None:
        if (upstream_tcp is None) == (upstream_uds is None):
            raise ValueError(
                "relay needs exactly one upstream address "
                "(upstream_tcp or upstream_uds)"
            )
        #: raw push payloads buffered by the client's push hook; only
        #: the thread currently driving the client socket appends
        #: (constructor here, then the poller thread exclusively)
        self._pending: list[bytes] = []
        if upstream_tcp is not None:
            self._upstream = NetworkClient.connect_tcp(
                upstream_tcp[0],
                upstream_tcp[1],
                timeout=upstream_timeout,
                subscribe=True,
                push_hook=self._pending.append,
            )
        else:
            self._upstream = NetworkClient.connect_uds(
                upstream_uds,
                timeout=upstream_timeout,
                subscribe=True,
                push_hook=self._pending.append,
            )
        try:
            # subscribe-before-fetch, exactly like a bootstrapping
            # client: no push can fall between the anchor and the
            # subscription, and the closing SUBSCRIBE round trip is an
            # ordered fence past the catch-up replay
            anchor_blob = self._upstream.fetch_atlas_bytes()
            self._upstream.subscribe(True)
            atlas = decode_atlas(anchor_blob)
            anchor_day = atlas.day
            runtime = AtlasRuntime(atlas)
            log: list[tuple[int, bytes]] = []
            for payload in self._pending:
                delta = decode_delta(payload)
                if delta.new_day <= runtime.atlas.day:
                    continue  # the anchor already includes it
                runtime.apply_delta(delta)
                log.append((delta.new_day, payload))
            self._pending.clear()
        except BaseException:
            self._upstream.close()
            raise
        super().__init__(_RelayBackend(runtime), tcp=tcp, uds=uds, **kwargs)
        # seed the serving state with the upstream bytes verbatim: the
        # tier below anchors on the origin's exact payload and replays
        # the exact pushed suffix — nothing is re-encoded on this path
        self._anchor = (anchor_day, anchor_blob)
        self._log_floor = anchor_day
        self._delta_log = log
        self._log_bytes = sum(len(p) for _, p in log)
        self.stats["anchor_day"] = anchor_day
        self.stats["delta_log_bytes"] = self._log_bytes
        self.stats["delta_log_days"] = len(log)
        #: 1 once the upstream feed is gone (connection lost or the
        #: origin dropped our subscription) — the relay keeps serving
        #: its last day but will not advance
        self.stats["upstream_lost"] = 0
        self.upstream_endpoint = self._upstream.endpoint
        self._poller: threading.Thread | None = None

    def start(self) -> "RelayGateway":
        super().start()
        self._poller = threading.Thread(
            target=self._poll_upstream, name="inano-relay-poll", daemon=True
        )
        self._poller.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        super().close()
        self._upstream.close()
        if self._poller is not None:
            self._poller.join(timeout=10.0)

    def _poll_upstream(self) -> None:
        """Poller thread: drain upstream pushes and re-broadcast each
        one, in upstream order, through the normal push path (apply on
        the bridge thread, zero-copy fan-out to downstream
        subscribers)."""
        client = self._upstream
        while not self._closed:
            try:
                client.poll_updates(max_wait=0.25)
            except (NetworkError, ProtocolError, OSError):
                if not self._closed:
                    self.stats["upstream_lost"] = 1
                return
            while self._pending:
                payload = self._pending.pop(0)
                try:
                    self._relay_push(payload)
                except Exception:
                    if not self._closed:
                        self.stats["upstream_lost"] = 1
                    return
            if not client.subscribed and not self._closed:
                # the origin dropped us (we drained too slowly); the
                # missed days make resubscribing unsound — stop here
                self.stats["upstream_lost"] = 1
                return

    def _relay_push(self, payload: bytes) -> None:
        delta = decode_delta(payload)
        if delta.new_day <= self.backend.day:
            return  # raced the bootstrap catch-up
        future = asyncio.run_coroutine_threadsafe(
            self._push_delta(delta, payload=payload), self._loop
        )
        future.result()
