"""Vectorized frontier search kernel over the compiled CSR core.

The predictor's per-destination backtracking search orders work by the
lexicographic priority ``(phase, hops, cost, counter)``. Two structural
facts make that priority batchable:

* **Phase/hops monotonicity.** Every relaxed candidate's ``(phase,
  hops)`` is >= the settled node's: intra-like edges (op ``OP_INTRA``)
  keep both, every other op increments hops, and an inter-AS edge's
  fixed phase can never undercut the settled state's phase (a DOWN-side
  node's phase is always 1 by the valley-free side construction). The
  search therefore settles whole ``(phase, hops)`` **buckets** in
  lexicographic order — phase-major, then hop-major.
* **Intra edges are check-free.** The only edges that keep a candidate
  inside the current bucket are ``OP_INTRA`` ones, which are always
  same-AS — no three-tuple or provider checks apply to them.

The kernel exploits both: within a bucket, nodes settle through the
same scalar pop discipline as the spec loop (``(cost, counter)``
ordering, immediate relaxation of intra edges); every **non-intra**
relaxation is deferred and, when the bucket completes, composed for the
whole frontier at once with numpy — candidate phase/hops/cost from
``e_op``/``e_phase``/``e_lat``, validity from packed-integer membership
tests against the three-tuple and provider sets, a vectorized ``(phase,
hops)`` prefilter against the targets' current states, and per-target
winner selection via ``np.minimum.reduceat`` over packed keys with
generation-order (emission-order) tie-breaking. Only *contested*
targets — where an AS preference could overrule the packed-key winner —
fall back to a scalar fold.

Two exact shortcut theorems make the spec's pop-time parent
re-evaluation cheap:

* **Refold candidates are known at relax time.** Every candidate the
  spec's re-evaluation would consider was already composed during
  relaxation against the *same* (final) neighbor state, so a strictly
  better key can never surface at pop time, and only candidates whose
  ``(phase, hops)`` equals the node's final key can change the outcome.
  The kernel records exactly those (the per-node *contest list*) as
  relaxation evaluates them, and refolds just that list — in edge-id
  (= forward-CSR emission) order — at pop.
* **Preferences name the chooser.** Every outgoing edge of a node has
  the node's own ASN as its source ASN, so a refold can only change the
  state when that ASN appears as a chooser in the preference set; for
  every other node (and whenever preferences are disabled) the refold
  is a provable no-op — equal-key candidates lose the ``>=`` exit-cost
  tie — and is skipped entirely.

Tie-breaking contract (bit-for-bit vs the scalar spec loop)
-----------------------------------------------------------

The kernel's output arrays are **bit-for-bit identical** to
``INanoPredictor._search_compiled`` (and therefore to the legacy dict
engine). That holds because:

* Deferred candidates are applied in *generation order* — settle order
  within the bucket, CSR (emission) order within a settle — which is
  exactly the order the scalar loop evaluates them in. Counter values
  are reserved per candidate in that order, so exact-priority ties
  across heap entries resolve identically.
* A deferred candidate's ``(phase, hops)`` is strictly greater than its
  source bucket's, so deferring it past the bucket's in-bucket (intra)
  updates cannot change any improvement outcome: an in-bucket update at
  the bucket key beats it regardless, and transient improvements at
  keys above a node's final key are always erased before the node
  settles (their heap entries pop after the node's minimal entry and
  are skipped as stale).
* Per target, only the *minimal* ``(phase, hops, cost, counter)`` entry
  ever decides the node's settle position; the kernel pushes exactly
  that entry.

The scalar loop stays available as the kernel's executable spec behind
``INanoPredictor(..., kernel="scalar")``; the randomized property suite
(``tests/test_search_kernel_property.py``) asserts equality over random
atlases, ablation configs, provider gates, FROM_SRC merges and delta
days.

The kernel needs every ASN packable into a fixed radix (three ASNs per
membership key in one int64); :func:`kernel_views` reports ``ok=False``
when the graph's ASNs are too large, and the predictor silently runs
the scalar spec loop instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.compiled import (
    OP_INTER,
    OP_INTRA,
    OP_LATE_EXIT,
    CompiledGraph,
)

#: below this many deferred candidates a bucket flush runs the scalar
#: relaxation directly — numpy per-call overhead beats the win on tiny
#: frontiers (late phases, sparse buckets)
_VECTOR_MIN = 96

#: below this many deferrable (non-intra) edges in the whole graph the
#: kernel skips the bucket/batch machinery entirely and runs the
#: immediate-relaxation loop (``_run_small``) — measured crossover: the
#: per-bucket numpy batches only out-run the optimized scalar loop once
#: graphs reach roughly 70k edges (frontier flushes in the thousands)
_VECTOR_GRAPH_MIN = 24576

#: packed (phase, hops) keys: phase << _K2_SHIFT | hops. Hop counts are
#: bounded by the longest simple path, far below 2**40.
_K2_SHIFT = 40


@dataclass
class KernelViews:
    """Kernel-facing immutable views of one compiled graph version.

    Cached on the graph (``CompiledGraph._kernel_views``) keyed by
    ``(version, tuple_degree_threshold)``; any in-place patch bumps the
    version and the views rebuild lazily on the next cold search.
    """

    ok: bool
    # numpy mirrors of the edge arrays (absent when not ok)
    e_src: np.ndarray = None
    e_dst: np.ndarray = None
    e_lat: np.ndarray = None
    e_sa: np.ndarray = None
    e_da: np.ndarray = None
    e_op: np.ndarray = None
    e_ph: np.ndarray = None
    # reverse CSR split by op, both preserving emission order per node:
    # intra (python lists, walked by the scalar in-bucket loop) and
    # rest (python lists for the scalar small-flush path, numpy twins
    # for the vectorized bucket gather)
    intra_off: list = None
    intra_lst: list = None
    rest_off: list = None
    rest_lst: list = None
    rest_off_np: np.ndarray = None
    rest_lst_np: np.ndarray = None
    #: per-edge packed ``(src_asn * B + dst_asn) * B`` — adding a
    #: next-ASN in ``[0, B)`` completes a three-tuple membership key
    ab2: np.ndarray = None
    #: per-edge: destination ASN's degree exceeds the tuple threshold
    bdeg: np.ndarray = None
    #: sorted packed three-tuple keys (tuples with any component
    #: outside ``[0, B)`` can never match a graph edge and are dropped)
    tuple_keys: np.ndarray = None
    #: per-node: the node's ASN appears as a chooser in the preference
    #: set — pop-time re-evaluation is a provable no-op for every other
    #: node (see the module docstring), so the kernel skips it there
    needs_reeval: list = None
    #: per-node: the node has intra in-edges (a bucket with no such
    #: member settles in one sorted pass, no local heap)
    has_intra: list = None
    base: int = 0


def kernel_views(
    cg: CompiledGraph, atlas, tuple_degree_threshold: int
) -> KernelViews:
    """The (cached) kernel views for one graph version + tuple threshold."""
    key = (cg.version, tuple_degree_threshold)
    cached = cg._kernel_views
    if cached is not None and cached[0] == key:
        return cached[1]
    views = _build_views(cg, atlas, tuple_degree_threshold)
    cg._kernel_views = (key, views)
    return views


def refresh_views_after_values(cg: CompiledGraph, cached) -> None:
    """Carry kernel views across a value-only patch instead of a rebuild.

    A value-only patch rewrites latency/loss floats (and may churn the
    three-tuple set) but moves no edges, nodes or CSR structure — so of
    the O(E) views only the ``e_lat`` mirror and the packed tuple keys
    go stale. Called by the patcher with the pre-touch cache tuple;
    re-keys it to the already-bumped graph version.
    """
    (_, thresh), views = cached
    if not views.ok:
        return
    views.e_lat = np.array(cg.e_lat, dtype=np.float64)
    views.tuple_keys = _packed_tuple_keys(cg.atlas.three_tuples, views.base)
    cg._kernel_views = ((cg.version, thresh), views)


def _packed_tuple_keys(three_tuples, base: int) -> np.ndarray:
    """Sorted ``(a*B + b)*B + c`` membership keys; tuples with any
    component outside ``[0, B)`` can never match a graph edge."""
    return np.array(
        sorted(
            (a * base + b) * base + c
            for (a, b, c) in three_tuples
            if 0 <= a < base and 0 <= b < base and 0 <= c < base
        ),
        dtype=np.int64,
    )


def _build_views(cg: CompiledGraph, atlas, thresh: int) -> KernelViews:
    e_sa = np.array(cg.e_src_asn, dtype=np.int64)
    e_da = np.array(cg.e_dst_asn, dtype=np.int64)
    max_asn = int(max(e_sa.max(), e_da.max())) if len(e_sa) else 0
    base = max_asn + 1
    # three packed components must fit one signed 64-bit key
    if base ** 3 >= 2 ** 62:
        return KernelViews(ok=False)
    e_src = np.array(cg.e_src, dtype=np.int64)
    e_dst = np.array(cg.e_dst, dtype=np.int64)
    e_op = np.array(cg.e_op, dtype=np.int64)

    # Split the reverse CSR by op, preserving per-node emission order.
    n = cg.n_nodes
    rev_lst = np.array(cg.rev_lst, dtype=np.int64)
    is_intra = e_op[rev_lst] == OP_INTRA if len(rev_lst) else np.zeros(0, bool)
    intra_ids = rev_lst[is_intra]
    rest_ids = rev_lst[~is_intra]
    intra_counts = np.bincount(e_dst[intra_ids], minlength=n)
    rest_counts = np.bincount(e_dst[rest_ids], minlength=n)
    intra_off = np.concatenate(([0], np.cumsum(intra_counts, dtype=np.int64)))
    rest_off = np.concatenate(([0], np.cumsum(rest_counts, dtype=np.int64)))

    degrees = atlas.as_degrees
    bdeg = np.fromiter(
        (degrees.get(asn, 0) > thresh for asn in cg.e_dst_asn),
        dtype=bool,
        count=len(cg.e_dst_asn),
    )
    tuple_keys = _packed_tuple_keys(atlas.three_tuples, base)
    pref_choosers = {a for (a, _, _) in atlas.preferences}
    needs_reeval = [asn in pref_choosers for asn in cg.node_asn]
    return KernelViews(
        ok=True,
        e_src=e_src,
        e_dst=e_dst,
        e_lat=np.array(cg.e_lat, dtype=np.float64),
        e_sa=e_sa,
        e_da=e_da,
        e_op=e_op,
        e_ph=np.array(cg.e_phase, dtype=np.int64),
        intra_off=intra_off.tolist(),
        intra_lst=intra_ids.tolist(),
        rest_off=rest_off.tolist(),
        rest_lst=rest_ids.tolist(),
        rest_off_np=rest_off,
        rest_lst_np=rest_ids,
        has_intra=(intra_counts > 0).tolist(),
        ab2=(e_sa * base + e_da) * base,
        bdeg=bdeg,
        tuple_keys=tuple_keys,
        needs_reeval=needs_reeval,
        base=base,
    )


def run_kernel(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    root: int,
):
    """Run the search kernel; returns ``(phase, eff, exitc, parent,
    nxt)`` python lists bit-identical to the scalar spec loop, or None
    when the graph's ASNs don't pack (caller falls back).

    Dispatches on graph scale: below ``_VECTOR_GRAPH_MIN`` deferrable
    (non-intra) edges the bucket/batch machinery costs more than it
    saves, so small graphs run :func:`_run_small` — the spec loop with
    the kernel's exact shortcuts (contest-list re-evaluation, hoisted
    phase/hops prefilter, op-split compose) but immediate scalar
    relaxation. Large graphs run the phase-major bucket queue
    (:func:`_run_buckets`) with vectorized frontier flushes.
    """
    views = kernel_views(cg, atlas, config.tuple_degree_threshold)
    if not views.ok:
        return None
    if len(views.rest_lst) < _VECTOR_GRAPH_MIN:
        return _run_small(cg, atlas, config, providers, root, views)
    return _run_buckets(cg, atlas, config, providers, root, views)


def _refold_contest(u, lst, parent, nxt, exitc, e_sa, e_da, e_dst, prefs):
    """Pop-time refold of a node's contest list (see module docstring).

    ``lst`` holds ``(edge_id, exit_cost)`` for every validity-passing
    candidate whose (phase, hops) equals the node's final key; folding
    them in edge-id order from the current incumbent replays the spec's
    pop-time re-evaluation exactly (all other fwd candidates are
    provable no-ops there). The candidate's next ASN equals its choice
    ASN: the crossing target's ASN, or the settled neighbor's inherited
    next ASN for intra edges.
    """
    for ei, nx in sorted(lst):
        a = e_sa[ei]
        b = e_da[ei]
        nn = b if b != a else nxt[e_dst[ei]]
        pi = parent[u]
        if pi >= 0:
            pd = e_da[pi]
            ic = pd if pd != a else nxt[u]
        else:
            ic = -1
        if nn != -1 and ic != -1 and nn != ic:
            if (a, nn, ic) in prefs:
                pass
            elif (a, ic, nn) in prefs:
                continue
            elif nx >= exitc[u]:
                continue
        elif nx >= exitc[u]:
            continue
        exitc[u] = nx
        parent[u] = ei
        nxt[u] = nn


def _run_small(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    root: int,
    views: KernelViews,
):
    """The spec loop with the kernel's exact shortcuts, for graphs too
    small to amortize per-bucket numpy calls. Bit-for-bit identical to
    ``_search_compiled``: relaxation is immediate and walks the unsplit
    reverse CSR, so heap counters advance exactly like the spec's; the
    contest-list re-evaluation and the hoisted ``(phase, hops)``
    prefilter are outcome-preserving (module docstring)."""
    use_tuples = config.use_three_tuples
    use_prefs = config.use_preferences
    thresh = config.tuple_degree_threshold
    tuples = atlas.three_tuples
    dget = atlas.as_degrees.get
    prefs = atlas.preferences
    e_src = cg.e_src
    e_dst = cg.e_dst
    e_lat = cg.e_lat
    e_sa = cg.e_src_asn
    e_da = cg.e_dst_asn
    e_op = cg.e_op
    e_ph = cg.e_phase
    rev_off = cg.rev_off
    rev_lst = cg.rev_lst
    needs_reeval = views.needs_reeval

    n = cg.n_nodes
    phase = [0] * n
    eff = [0] * n
    exitc = [0.0] * n
    parent = [-1] * n
    nxt = [-1] * n
    contest: list = [None] * n
    finalized = bytearray(n)
    heappush = heapq.heappush
    heappop = heapq.heappop
    phase[root] = 1
    heap: list[tuple[int, int, float, int, int]] = [(1, 0, 0.0, 0, root)]
    count = 1

    while heap:
        u = heappop(heap)[4]
        if finalized[u]:
            continue
        if use_prefs and u != root:
            lst = contest[u]
            if lst is not None and len(lst) > 1:
                _refold_contest(
                    u, lst, parent, nxt, exitc, e_sa, e_da, e_dst, prefs
                )
        finalized[u] = 1
        sp = phase[u]
        se = eff[u]
        sx = exitc[u]
        sn = nxt[u]
        se1 = se + 1
        for ei in rev_lst[rev_off[u]:rev_off[u + 1]]:
            v = e_src[ei]
            if finalized[v]:
                continue
            op = e_op[ei]
            if op == OP_INTRA:
                np_ = sp
                ne = se
            elif op == OP_INTER:
                np_ = e_ph[ei]
                ne = se1
            else:
                np_ = sp
                ne = se1
            ip = phase[v]
            if ip and (np_ > ip or (np_ == ip and ne > eff[v])):
                continue
            a = e_sa[ei]
            b = e_da[ei]
            if a != b:
                if (
                    use_tuples
                    and sn != -1
                    and b != sn
                    and dget(b, 0) > thresh
                    and (a, b, sn) not in tuples
                ):
                    continue
                if providers is not None and sn == -1 and a not in providers:
                    continue
                nn = b
            else:
                nn = sn
            nx = sx + e_lat[ei] if op <= OP_LATE_EXIT else 0.0
            tie = ip and np_ == ip and ne == eff[v]
            if tie:
                if use_prefs:
                    if needs_reeval[v]:
                        contest[v].append((ei, nx))
                    cc = nn
                    pi = parent[v]
                    if pi >= 0:
                        pd = e_da[pi]
                        ic = pd if pd != a else nxt[v]
                    else:
                        ic = -1
                    if cc != -1 and ic != -1 and cc != ic:
                        if (a, cc, ic) in prefs:
                            pass
                        elif (a, ic, cc) in prefs:
                            continue
                        elif nx >= exitc[v]:
                            continue
                    elif nx >= exitc[v]:
                        continue
                elif nx >= exitc[v]:
                    continue
            elif use_prefs and needs_reeval[v]:
                contest[v] = [(ei, nx)]
            phase[v] = np_
            eff[v] = ne
            exitc[v] = nx
            parent[v] = ei
            nxt[v] = nn
            heappush(heap, (np_, ne, nx, count, v))
            count += 1

    return phase, eff, exitc, parent, nxt


def _run_buckets(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    root: int,
    views: KernelViews,
):
    """The phase-major bucket queue with vectorized frontier flushes
    (see the module docstring for the equivalence argument)."""
    use_tuples = config.use_three_tuples
    use_prefs = config.use_preferences
    thresh = config.tuple_degree_threshold
    tuples = atlas.three_tuples
    dget = atlas.as_degrees.get
    prefs = atlas.preferences
    # scalar-path locals (python lists)
    e_src = cg.e_src
    e_dst = cg.e_dst
    e_lat = cg.e_lat
    e_sa = cg.e_src_asn
    e_da = cg.e_dst_asn
    e_op = cg.e_op
    e_ph = cg.e_phase
    intra_off = views.intra_off
    intra_lst = views.intra_lst
    rest_off = views.rest_off
    rest_lst = views.rest_lst
    needs_reeval = views.needs_reeval
    # vector-path locals
    rest_off_np = views.rest_off_np
    rest_lst_np = views.rest_lst_np
    e_src_np = views.e_src
    e_lat_np = views.e_lat
    e_sa_np = views.e_sa
    e_da_np = views.e_da
    e_op_np = views.e_op
    e_ph_np = views.e_ph
    ab2_np = views.ab2
    bdeg_np = views.bdeg
    tuple_keys = views.tuple_keys
    n_tuple_keys = len(tuple_keys)
    providers_arr = (
        np.fromiter(sorted(providers), dtype=np.int64, count=len(providers))
        if providers is not None
        else None
    )

    n = cg.n_nodes
    phase = [0] * n
    eff = [0] * n
    exitc = [0.0] * n
    parent = [-1] * n
    nxt = [-1] * n
    contest: list = [None] * n
    finalized = bytearray(n)
    # numpy mirrors of phase/eff/finalized, read only by the vectorized
    # flush; scalar-path updates queue in dirty lists and sync in batch
    phase_np = np.zeros(n, dtype=np.int64)
    eff_np = np.zeros(n, dtype=np.int64)
    fin_np = np.zeros(n, dtype=bool)
    dirty: list[int] = []
    fin_dirty: list[int] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    phase[root] = 1
    phase_np[root] = 1
    count = 1
    #: pending heap entries grouped by (phase, hops); the heap holds
    #: only bucket *keys* — entries are bulk-sorted per bucket, which
    #: reproduces global pop order because pops are monotone in the key
    buckets: dict = {(1, 0): [(1, 0, 0.0, 0, root)]}
    bucket_keys: list = [(1, 0)]
    node_has_intra = views.has_intra

    def push_entry(p, h, x, c, v):
        key = (p, h)
        lst = buckets.get(key)
        if lst is None:
            buckets[key] = [(p, h, x, c, v)]
            heappush(bucket_keys, key)
        else:
            lst.append((p, h, x, c, v))

    def relax_rest_scalar(u, sp, se, sx, sn, base_counter):
        """Scalar deferred relaxation for one settled node (small-flush
        path); the rest-edge branch of ``_run_small`` verbatim, with
        counters pre-reserved in generation order."""
        ne = se + 1
        c = base_counter
        for ei in rest_lst[rest_off[u]:rest_off[u + 1]]:
            c += 1
            v = e_src[ei]
            if finalized[v]:
                continue
            op = e_op[ei]
            np_ = e_ph[ei] if op == OP_INTER else sp
            ip = phase[v]
            if ip and (np_ > ip or (np_ == ip and ne > eff[v])):
                continue
            a = e_sa[ei]
            b = e_da[ei]
            # all non-intra edges cross AS boundaries (a != b)
            if (
                use_tuples
                and sn != -1
                and b != sn
                and dget(b, 0) > thresh
                and (a, b, sn) not in tuples
            ):
                continue
            if providers is not None and sn == -1 and a not in providers:
                continue
            nx = sx + e_lat[ei] if op == OP_LATE_EXIT else 0.0
            tie = ip and np_ == ip and ne == eff[v]
            if tie:
                if use_prefs:
                    if needs_reeval[v]:
                        contest[v].append((ei, nx))
                    pi = parent[v]
                    if pi >= 0:
                        pd = e_da[pi]
                        ic = pd if pd != a else nxt[v]
                    else:
                        ic = -1
                    if b != -1 and ic != -1 and b != ic:
                        if (a, b, ic) in prefs:
                            pass
                        elif (a, ic, b) in prefs:
                            continue
                        elif nx >= exitc[v]:
                            continue
                    elif nx >= exitc[v]:
                        continue
                elif nx >= exitc[v]:
                    continue
            elif use_prefs and needs_reeval[v]:
                contest[v] = [(ei, nx)]
            phase[v] = np_
            eff[v] = ne
            exitc[v] = nx
            parent[v] = ei
            nxt[v] = b
            dirty.append(v)
            push_entry(np_, ne, nx, c - 1, v)

    def fold_group(rows, v_l, ei_l, p_l, h_l, x_l, a_l, b_l, c_l):
        """Scalar winner fold for one contested target group, candidate
        rows in generation order; pushes the minimal improving entry."""
        vtx = v_l[rows[0]]
        best_entry = None
        for j in rows:
            cpj = p_l[j]
            chj = h_l[j]
            cxj = x_l[j]
            ip = phase[vtx]
            tie = False
            if ip:
                ie = eff[vtx]
                if cpj != ip or chj != ie:
                    if cpj > ip or (cpj == ip and chj > ie):
                        continue
                else:
                    tie = True
                    aa = a_l[j]
                    cc = b_l[j]
                    if use_prefs:
                        if needs_reeval[vtx]:
                            contest[vtx].append((ei_l[j], cxj))
                        pi = parent[vtx]
                        if pi >= 0:
                            pd = e_da[pi]
                            ic = pd if pd != aa else nxt[vtx]
                        else:
                            ic = -1
                        if cc != -1 and ic != -1 and cc != ic:
                            if (aa, cc, ic) in prefs:
                                pass
                            elif (aa, ic, cc) in prefs:
                                continue
                            elif cxj >= exitc[vtx]:
                                continue
                        elif cxj >= exitc[vtx]:
                            continue
                    elif cxj >= exitc[vtx]:
                        continue
            if not tie and use_prefs and needs_reeval[vtx]:
                contest[vtx] = [(ei_l[j], cxj)]
            phase[vtx] = cpj
            eff[vtx] = chj
            exitc[vtx] = cxj
            parent[vtx] = ei_l[j]
            nxt[vtx] = b_l[j]
            entry = (cpj, chj, cxj, c_l[j])
            if best_entry is None or entry < best_entry:
                best_entry = entry
        if best_entry is not None:
            dirty.append(vtx)
            push_entry(*best_entry, vtx)

    def flush(settled):
        """Batch-relax all deferred (non-intra) edges of a finished
        bucket (``settled`` carries ``(node, phase, hops, cost,
        next_asn)`` per settle, in settle order): vectorized composition
        + validity + prefilter, packed ``minimum.reduceat`` winner
        selection per target, scalar folds only for contested targets —
        all in generation order."""
        nonlocal count
        tot = 0
        for tup in settled:
            u = tup[0]
            tot += rest_off[u + 1] - rest_off[u]
        if tot == 0:
            return
        base = count
        count += tot
        if tot < _VECTOR_MIN:
            c = base
            for u, sp, se, sx, sn in settled:
                relax_rest_scalar(u, sp, se, sx, sn, c)
                c += rest_off[u + 1] - rest_off[u]
            return
        # sync the numpy mirrors the vector path reads
        if dirty:
            dn = np.fromiter(dirty, np.int64, len(dirty))
            phase_np[dn] = np.fromiter(
                (phase[x] for x in dirty), np.int64, len(dirty)
            )
            eff_np[dn] = np.fromiter(
                (eff[x] for x in dirty), np.int64, len(dirty)
            )
            dirty.clear()
        if fin_dirty:
            fin_np[
                np.fromiter(fin_dirty, np.int64, len(fin_dirty))
            ] = True
            fin_dirty.clear()
        us, sps, ses, sxs, sns = zip(*settled)
        n_settled = len(settled)
        s = np.fromiter(us, dtype=np.int64, count=n_settled)
        cnt = rest_off_np[s + 1] - rest_off_np[s]
        startpos = np.repeat(rest_off_np[s], cnt)
        within = np.arange(tot, dtype=np.int64) - np.repeat(
            np.cumsum(cnt) - cnt, cnt
        )
        eids = rest_lst_np[startpos + within]
        sp = np.repeat(np.fromiter(sps, np.int64, n_settled), cnt)
        se = np.repeat(np.fromiter(ses, np.int64, n_settled), cnt)
        sx = np.repeat(np.fromiter(sxs, np.float64, n_settled), cnt)
        sn = np.repeat(np.fromiter(sns, np.int64, n_settled), cnt)
        v = e_src_np[eids]
        b = e_da_np[eids]
        pv = phase_np[v]
        ev = eff_np[v]
        valid = ~fin_np[v]
        if use_tuples:
            chk = (sn >= 0) & (b != sn) & bdeg_np[eids]
            if n_tuple_keys:
                keys = ab2_np[eids] + sn
                pos = np.searchsorted(tuple_keys, keys)
                hit = tuple_keys[np.minimum(pos, n_tuple_keys - 1)] == keys
                valid &= ~chk | hit
            else:
                valid &= ~chk
        if providers_arr is not None:
            a_np = e_sa_np[eids]
            valid &= (sn != -1) | np.isin(a_np, providers_arr)
        op = e_op_np[eids]
        cp = np.where(op == OP_INTER, e_ph_np[eids], sp)
        ch = se + 1
        cx = np.where(op == OP_LATE_EXIT, sx + e_lat_np[eids], 0.0)
        keep = valid & ((pv == 0) | (cp < pv) | ((cp == pv) & (ch <= ev)))
        idx = np.flatnonzero(keep)
        if idx.size == 0:
            return
        # group by target; stable sort keeps generation order per group
        vk = v[idx]
        order = np.argsort(vk, kind="stable")
        sel = idx[order]
        v_sorted = vk[order]
        heads = np.concatenate(
            ([0], np.flatnonzero(v_sorted[1:] != v_sorted[:-1]) + 1)
        )
        group_sizes = np.diff(np.concatenate((heads, [len(sel)])))
        k2 = (cp[sel] << _K2_SHIFT) | ch[sel]
        gmin = np.minimum.reduceat(k2, heads)
        at_min = k2 == np.repeat(gmin, group_sizes)
        min_counts = np.add.reduceat(at_min.astype(np.int64), heads)
        # incumbent packed key per group (unreached -> +inf sentinel)
        pv_sorted = pv[idx][order]
        ev_sorted = ev[idx][order]
        # (finalized targets were masked out of ``keep``; mirror values
        # for them are never read past this point)
        inc_k2 = np.where(
            pv_sorted[heads] == 0,
            np.int64(2 ** 62),
            (pv_sorted[heads] << _K2_SHIFT) | ev_sorted[heads],
        )
        if use_prefs:
            # fast path: unique winner key strictly below the incumbent —
            # no preference can fire, the packed-key winner is the fold
            fast_group = (min_counts == 1) & (gmin < inc_k2)
            slow_heads = heads[~fast_group]
            frows = np.flatnonzero(at_min & np.repeat(fast_group, group_sizes))
        else:
            # without preferences ties resolve by strict exit-cost, so
            # the full lexicographic (key, cost, order) minimum is the
            # fold for any group; only incumbent ties need the cost check
            o2 = np.lexsort((cx[sel], k2, v_sorted))
            first = np.searchsorted(v_sorted[o2], v_sorted[heads])
            frows_all = o2[first]
            fsel = gmin <= inc_k2
            eq = gmin == inc_k2
            if eq.any():
                inc_x = np.fromiter(
                    (exitc[t] for t in v_sorted[heads].tolist()),
                    np.float64,
                    len(heads),
                )
                fsel &= (~eq) | (cx[sel][frows_all] < inc_x)
            frows = frows_all[fsel]
            # the prefilter caps every candidate key at the incumbent's,
            # so a rejected group is all exact ties losing the strict
            # exit-cost test: no improving fold exists, drop it outright
            slow_heads = np.zeros(0, dtype=np.int64)
        if len(frows):
            w_sel = sel[frows]
            w_v_np = v_sorted[frows]
            w_p_np = cp[w_sel]
            w_h_np = ch[w_sel]
            phase_np[w_v_np] = w_p_np
            eff_np[w_v_np] = w_h_np
            w_v = w_v_np.tolist()
            w_ei = eids[w_sel].tolist()
            w_p = w_p_np.tolist()
            w_h = w_h_np.tolist()
            w_x = cx[w_sel].tolist()
            w_b = b[w_sel].tolist()
            w_c = (base + w_sel).tolist()
            track = use_prefs
            buckets_get = buckets.get
            for i in range(len(w_v)):
                vtx = w_v[i]
                cpj = w_p[i]
                chj = w_h[i]
                cxj = w_x[i]
                eij = w_ei[i]
                phase[vtx] = cpj
                eff[vtx] = chj
                exitc[vtx] = cxj
                parent[vtx] = eij
                nxt[vtx] = w_b[i]
                if track and needs_reeval[vtx]:
                    contest[vtx] = [(eij, cxj)]
                key = (cpj, chj)
                lst = buckets_get(key)
                if lst is None:
                    buckets[key] = [(cpj, chj, cxj, w_c[i], vtx)]
                    heappush(bucket_keys, key)
                else:
                    lst.append((cpj, chj, cxj, w_c[i], vtx))
        if len(slow_heads):
            sizes = group_sizes[np.searchsorted(heads, slow_heads)]
            v_l = v_sorted.tolist()
            ei_l = eids[sel].tolist()
            p_l = cp[sel].tolist()
            h_l = ch[sel].tolist()
            x_l = cx[sel].tolist()
            a_l = e_sa_np[eids][sel].tolist()
            b_l = b[sel].tolist()
            c_l = (base + sel).tolist()
            for h0, size in zip(slow_heads.tolist(), sizes.tolist()):
                fold_group(
                    range(h0, h0 + size), v_l, ei_l, p_l, h_l, x_l,
                    a_l, b_l, c_l,
                )

    settled_batch: list[tuple] = []

    def settle_serial(local_heap):
        """In-bucket serial loop for buckets with live intra edges:
        settle by (cost, counter), relaxing intra (same-AS) edges
        immediately — they stay inside the bucket."""
        nonlocal count
        while local_heap:
            entry = heappop(local_heap)
            u = entry[4]
            if finalized[u]:
                continue
            if use_prefs:
                lst = contest[u]
                if lst is not None and len(lst) > 1:
                    _refold_contest(
                        u, lst, parent, nxt, exitc, e_sa, e_da, e_dst, prefs
                    )
            finalized[u] = 1
            fin_dirty.append(u)
            sp = phase[u]
            se = eff[u]
            sx = exitc[u]
            sn = nxt[u]
            settled_batch.append((u, sp, se, sx, sn))
            for ei in intra_lst[intra_off[u]:intra_off[u + 1]]:
                v = e_src[ei]
                if finalized[v]:
                    continue
                nx = sx + e_lat[ei]
                ip = phase[v]
                if ip and (sp > ip or (sp == ip and se > eff[v])):
                    continue
                tie = ip and sp == ip and se == eff[v]
                if tie:
                    if use_prefs:
                        if needs_reeval[v]:
                            contest[v].append((ei, nx))
                        # intra edges never cross: the candidate next
                        # hop is the inherited next ASN
                        aa = e_sa[ei]
                        pi = parent[v]
                        if pi >= 0:
                            pd = e_da[pi]
                            ic = pd if pd != aa else nxt[v]
                        else:
                            ic = -1
                        if sn != -1 and ic != -1 and sn != ic:
                            if (aa, sn, ic) in prefs:
                                pass
                            elif (aa, ic, sn) in prefs:
                                continue
                            elif nx >= exitc[v]:
                                continue
                        elif nx >= exitc[v]:
                            continue
                    elif nx >= exitc[v]:
                        continue
                elif use_prefs and needs_reeval[v]:
                    contest[v] = [(ei, nx)]
                phase[v] = sp
                eff[v] = se
                exitc[v] = nx
                parent[v] = ei
                nxt[v] = sn
                dirty.append(v)
                heappush(local_heap, (sp, se, nx, count, v))
                count += 1

    while bucket_keys:
        key = heappop(bucket_keys)
        entries = buckets.pop(key)
        entries.sort()
        live = [e for e in entries if not finalized[e[4]]]
        if not live:
            continue
        # In-bucket intra relaxations can only originate from members
        # with intra in-edges; without any, the sorted order *is* the
        # final settle order and the whole bucket settles in one pass.
        if any(node_has_intra[e[4]] for e in live):
            # a sorted list already satisfies the heap invariant
            settle_serial(live)
        else:
            for e in live:
                u = e[4]
                if finalized[u]:
                    continue
                if use_prefs:
                    lst = contest[u]
                    if lst is not None and len(lst) > 1:
                        _refold_contest(
                            u, lst, parent, nxt, exitc, e_sa, e_da,
                            e_dst, prefs,
                        )
                finalized[u] = 1
                fin_dirty.append(u)
                settled_batch.append(
                    (u, phase[u], eff[u], exitc[u], nxt[u])
                )
        if settled_batch:
            flush(settled_batch)
            settled_batch = []

    return phase, eff, exitc, parent, nxt
