"""Vectorized frontier search kernel over the compiled CSR core.

The predictor's per-destination backtracking search orders work by the
lexicographic priority ``(phase, hops, cost, counter)``. Two structural
facts make that priority batchable:

* **Phase/hops monotonicity.** Every relaxed candidate's ``(phase,
  hops)`` is >= the settled node's: intra-like edges (op ``OP_INTRA``)
  keep both, every other op increments hops, and an inter-AS edge's
  fixed phase can never undercut the settled state's phase (a DOWN-side
  node's phase is always 1 by the valley-free side construction). The
  search therefore settles whole ``(phase, hops)`` **buckets** in
  lexicographic order — phase-major, then hop-major.
* **Intra edges are check-free.** The only edges that keep a candidate
  inside the current bucket are ``OP_INTRA`` ones, which are always
  same-AS — no three-tuple or provider checks apply to them.

The kernel exploits both: within a bucket, nodes settle through the
same scalar pop discipline as the spec loop (``(cost, counter)``
ordering, immediate relaxation of intra edges); every **non-intra**
relaxation is deferred and, when the bucket completes, composed for the
whole frontier at once with numpy — candidate phase/hops/cost from
``e_op``/``e_phase``/``e_lat``, validity from packed-integer membership
tests against the three-tuple and provider sets, a vectorized ``(phase,
hops)`` prefilter against the targets' current states, and per-target
winner selection via ``np.minimum.reduceat`` over packed keys with
generation-order (emission-order) tie-breaking. Only *contested*
targets — where an AS preference could overrule the packed-key winner —
fall back to a scalar fold.

Mutable search state is **array-native**: phase / effective hops / exit
cost / parent edge / next ASN live in flat int64/float64 arrays sized
to the graph (plus a boolean finalized array), written by vectorized
scatter stores on the winner path and by scalar stores on the contested
fold and in-bucket intra paths. There are no python-list twins and no
mirror syncing — the vectorized flush reads the same arrays the scalar
paths write. The arrays come from a :class:`SearchStatePool` freelist
(one per compiled graph, shared by every predictor over that graph), so
the warm path performs zero per-query state allocation. Bucket pending
entries are stored per ``(phase, hops)`` key as ``(cost, counter,
node)`` **column-array chunks** appended whole by the vectorized flush
(small winner sets and scalar relaxations stage as plain tuples); a
bucket pop concatenates its chunks and orders them with one
``np.lexsort`` instead of per-entry heap traffic.

Two exact shortcut theorems make the spec's pop-time parent
re-evaluation cheap:

* **Refold candidates are known at relax time.** Every candidate the
  spec's re-evaluation would consider was already composed during
  relaxation against the *same* (final) neighbor state, so a strictly
  better key can never surface at pop time, and only candidates whose
  ``(phase, hops)`` equals the node's final key can change the outcome.
  The kernel records exactly those (the per-node *contest list*) as
  relaxation evaluates them, and refolds just that list — in edge-id
  (= forward-CSR emission) order — at pop.
* **Preferences name the chooser.** Every outgoing edge of a node has
  the node's own ASN as its source ASN, so a refold can only change the
  state when that ASN appears as a chooser in the preference set; for
  every other node (and whenever preferences are disabled) the refold
  is a provable no-op — equal-key candidates lose the ``>=`` exit-cost
  tie — and is skipped entirely.

Tie-breaking contract (bit-for-bit vs the scalar spec loop)
-----------------------------------------------------------

The kernel's output arrays are **bit-for-bit identical** to
``INanoPredictor._search_compiled`` (and therefore to the legacy dict
engine). That holds because:

* Deferred candidates are applied in *generation order* — settle order
  within the bucket, CSR (emission) order within a settle — which is
  exactly the order the scalar loop evaluates them in. Counter values
  are reserved per candidate in that order, so exact-priority ties
  across heap entries resolve identically.
* A deferred candidate's ``(phase, hops)`` is strictly greater than its
  source bucket's, so deferring it past the bucket's in-bucket (intra)
  updates cannot change any improvement outcome: an in-bucket update at
  the bucket key beats it regardless, and transient improvements at
  keys above a node's final key are always erased before the node
  settles (their heap entries pop after the node's minimal entry and
  are skipped as stale).
* Per target, only the *minimal* ``(phase, hops, cost, counter)`` entry
  ever decides the node's settle position; the kernel pushes exactly
  that entry.

Bounded re-relaxation repair (the repair-frontier theorem)
----------------------------------------------------------

Bucket-engine searches optionally record a **replay journal**: every
state improvement (node, phase, hops, cost, parent edge, next ASN,
reserved counter, pushed flag), every contest-list mutation, and a
watermark (pending-entry counter + row counts) at every live bucket
pop. Because bucket keys pop in strictly increasing order, the journal
lets :func:`repair_kernel` reconstruct the engine's exact mid-search
state at any bucket boundary.

For a **value-only** patch, a changed edge value is first *read* by the
search at the settle of the edge's target endpoint ``u = e_dst[ei]``
(deferred relaxation composes the edge there; contest refolds reuse the
cost recorded at relax time; loss is never read by the search). A
churned three-tuple ``(a, b, c)`` is first read at the settle of an
endpoint ``u`` of an ``(a, b)`` edge whose settled next-ASN equals
``c``. Let ``K0`` be the minimum final ``(phase, hops)`` key over all
such reached endpoints. Every bucket strictly before ``K0`` pops
identical entries, settles identical nodes, and writes identical state
(including counters) in the patched cold run as in the recorded run —
so re-running the engine from the recorded ``K0`` watermark over the
preserved arrays is **bit-for-bit equal to a cold re-search**, at the
cost of only the suffix of the search. Replayed runs re-record their
journal (truncated prefix + live suffix), so value-only repairs chain
across consecutive delta days.

The scalar loop stays available as the kernel's executable spec behind
``INanoPredictor(..., kernel="scalar")``; the randomized property suite
(``tests/test_search_kernel_property.py``) asserts equality over random
atlases, ablation configs, provider gates, FROM_SRC merges, delta days
and journal replays.

The kernel needs every ASN packable into a fixed radix (three ASNs per
membership key in one int64); :func:`kernel_views` reports ``ok=False``
when the graph's ASNs are too large, and the predictor silently runs
the scalar spec loop instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.compiled import (
    OP_INTER,
    OP_INTRA,
    OP_LATE_EXIT,
    CompiledGraph,
)

#: below this many deferred candidates a bucket flush runs the scalar
#: relaxation directly — numpy per-call overhead beats the win on tiny
#: frontiers (late phases, sparse buckets)
_VECTOR_MIN = 96

#: below this many deferrable (non-intra) edges in the whole graph the
#: kernel skips the bucket/batch machinery entirely and runs the
#: immediate-relaxation loop (``_run_small``) — re-measured for the
#: array-native engine: column-chunk buckets and scatter winner writes
#: pull the crossover down to roughly 16k deferrable edges
_VECTOR_GRAPH_MIN = 16384

#: packed (phase, hops) keys: phase << _K2_SHIFT | hops. Hop counts are
#: bounded by the longest simple path, far below 2**40.
_K2_SHIFT = 40
_K2_MASK = (1 << _K2_SHIFT) - 1

#: below this many winners a flush stages bucket entries as plain
#: tuples instead of column chunks (tiny-array overhead)
_CHUNK_MIN = 24

#: journal row cap: a search recording more improvement rows than this
#: drops its journal (the search result is unaffected; a later
#: value-only repair falls back to the dirty re-search path)
_JOURNAL_MAX_ROWS = 1 << 17

#: optional per-phase profile sink: set to a dict to accumulate
#: ``alloc_s`` (state acquisition) and ``search_s`` (total kernel)
#: wall seconds; benchmarks read it for the schema-2 phase breakdown
PROFILE: dict | None = None


def profile_into(registry, prefix: str = "kernel.profile"):
    """Point the module profile sink at an obs registry: ``PROFILE``
    becomes a live :class:`~repro.obs.registry.StatsView` over
    ``prefix.alloc_s`` / ``prefix.search_s`` gauges, so kernel phase
    timings land in the same snapshot as every other metric. Returns
    the view; pass ``None`` to turn profiling back off."""
    global PROFILE
    if registry is None:
        PROFILE = None
        return None
    PROFILE = registry.view(prefix, ["alloc_s", "search_s"])
    return PROFILE


class SearchStatePool:
    """Freelist of per-search state-array bundles for one graph size.

    A bundle is ``(phase, eff, exitc, parent, nxt)`` — int64 except the
    float64 exit cost — sized to the graph's node count. One pool hangs
    off each :class:`CompiledGraph` (``cg.search_pool()``), shared by
    every predictor searching that graph, so the warm path allocates no
    per-query state: evicted and repaired searches recycle their
    bundles here. A node-count change (renumbering day, recompile)
    drops the freelist via :meth:`resize`.

    Recycled bundles may be handed to the next search, so callers must
    not retain a search's state arrays after explicitly recycling them.
    """

    __slots__ = ("n", "cap", "_free", "_fin")

    def __init__(self, n: int = 0, cap: int = 8) -> None:
        self.n = int(n)
        self.cap = cap
        self._free: list[tuple] = []
        self._fin = None

    def resize(self, n: int) -> None:
        """Pin the pool to ``n`` nodes, dropping stale-sized arrays."""
        if n != self.n:
            self.n = int(n)
            self._free.clear()
            self._fin = None

    def acquire(self, n: int, reset: bool = True):
        """A ``(phase, eff, exitc, parent, nxt)`` bundle of length
        ``n`` — recycled when available, freshly allocated otherwise.
        ``reset=False`` skips the zero/-1 fill for callers that
        overwrite every element."""
        self.resize(n)
        if self._free:
            phase, eff, exitc, parent, nxt = self._free.pop()
            if reset:
                phase.fill(0)
                eff.fill(0)
                exitc.fill(0.0)
                parent.fill(-1)
                nxt.fill(-1)
            return phase, eff, exitc, parent, nxt
        if reset:
            return (
                np.zeros(n, np.int64),
                np.zeros(n, np.int64),
                np.zeros(n, np.float64),
                np.full(n, -1, np.int64),
                np.full(n, -1, np.int64),
            )
        return (
            np.empty(n, np.int64),
            np.empty(n, np.int64),
            np.empty(n, np.float64),
            np.empty(n, np.int64),
            np.empty(n, np.int64),
        )

    def recycle(self, arrays) -> None:
        """Return a bundle to the freelist (dropped on size mismatch or
        when the freelist is full)."""
        if len(arrays[0]) == self.n and len(self._free) < self.cap:
            self._free.append(tuple(arrays))

    def fin_scratch(self, n: int) -> np.ndarray:
        """The pool's reusable finalized-flags array, reset to False."""
        self.resize(n)
        f = self._fin
        if f is None or len(f) != n:
            f = self._fin = np.zeros(n, dtype=bool)
        else:
            f.fill(False)
        return f

    def clear(self) -> None:
        self._free.clear()
        self._fin = None

    @property
    def free_bundles(self) -> int:
        return len(self._free)

    def nbytes(self) -> int:
        total = sum(a.nbytes for b in self._free for a in b)
        if self._fin is not None:
            total += self._fin.nbytes
        return total


def _acquire_state(pool: SearchStatePool | None, n: int, reset: bool):
    if PROFILE is None:
        if pool is not None:
            return pool.acquire(n, reset=reset)
        return SearchStatePool(n).acquire(n, reset=reset)
    from time import perf_counter

    t0 = perf_counter()
    out = (
        pool.acquire(n, reset=reset)
        if pool is not None
        else SearchStatePool(n).acquire(n, reset=reset)
    )
    PROFILE["alloc_s"] = PROFILE.get("alloc_s", 0.0) + perf_counter() - t0
    return out


class SearchJournal:
    """Finalized replay journal of one bucket-engine search.

    Improvement rows (one per state write, in event order): ``v`` node,
    ``p``/``h``/``x`` the written phase/hops/exit cost, ``ei`` parent
    edge, ``b`` next ASN, ``c`` reserved counter, ``pushed`` whether a
    pending entry was pushed for the row. Contest rows mirror every
    contest-list mutation (``creset`` True replaces the list). Bucket
    rows record, per *live* bucket pop in strictly increasing key
    order, the counter and row-count watermarks at that pop.
    """

    __slots__ = (
        "v", "p", "h", "x", "ei", "b", "c", "pushed",
        "cv", "cei", "cx", "creset",
        "bk_p", "bk_h", "bk_count", "bk_rows", "bk_crows",
    )

    def __init__(self, v, p, h, x, ei, b, c, pushed,
                 cv, cei, cx, creset,
                 bk_p, bk_h, bk_count, bk_rows, bk_crows):
        self.v = v
        self.p = p
        self.h = h
        self.x = x
        self.ei = ei
        self.b = b
        self.c = c
        self.pushed = pushed
        self.cv = cv
        self.cei = cei
        self.cx = cx
        self.creset = creset
        self.bk_p = bk_p
        self.bk_h = bk_h
        self.bk_count = bk_count
        self.bk_rows = bk_rows
        self.bk_crows = bk_crows

    @property
    def rows(self) -> int:
        return len(self.v)

    def nbytes(self) -> int:
        return sum(
            getattr(self, f).nbytes for f in self.__slots__
        )


class _JournalRecorder:
    """Order-preserving journal accumulator: vectorized flushes append
    whole array chunks, scalar paths stage tuples that flush into a
    chunk before the next array append. Exceeding the row cap kills
    the recorder (finalize returns None); the search is unaffected."""

    __slots__ = (
        "parts", "sv", "sp", "sh", "sx", "sei", "sb", "sc", "spush",
        "cparts", "scv", "scei", "scx", "screset",
        "bkp", "bkh", "bkc", "bkr", "bkcr",
        "rows", "crows", "dead",
    )

    def __init__(self) -> None:
        self.parts: list[tuple] = []
        self.sv: list = []
        self.sp: list = []
        self.sh: list = []
        self.sx: list = []
        self.sei: list = []
        self.sb: list = []
        self.sc: list = []
        self.spush: list = []
        self.cparts: list[tuple] = []
        self.scv: list = []
        self.scei: list = []
        self.scx: list = []
        self.screset: list = []
        self.bkp: list = []
        self.bkh: list = []
        self.bkc: list = []
        self.bkr: list = []
        self.bkcr: list = []
        self.rows = 0
        self.crows = 0
        self.dead = False

    def seed(self, j: SearchJournal, rows0: int, crows0: int, nbk: int):
        """Start from the truncated prefix of a prior journal (replay)."""
        if rows0:
            self.parts.append((
                j.v[:rows0].copy(), j.p[:rows0].copy(), j.h[:rows0].copy(),
                j.x[:rows0].copy(), j.ei[:rows0].copy(), j.b[:rows0].copy(),
                j.c[:rows0].copy(), j.pushed[:rows0].copy(),
            ))
        if crows0:
            self.cparts.append((
                j.cv[:crows0].copy(), j.cei[:crows0].copy(),
                j.cx[:crows0].copy(), j.creset[:crows0].copy(),
            ))
        self.bkp = j.bk_p[:nbk].tolist()
        self.bkh = j.bk_h[:nbk].tolist()
        self.bkc = j.bk_count[:nbk].tolist()
        self.bkr = j.bk_rows[:nbk].tolist()
        self.bkcr = j.bk_crows[:nbk].tolist()
        self.rows = rows0
        self.crows = crows0

    def _kill(self) -> None:
        self.dead = True
        self.parts.clear()
        self.cparts.clear()
        for lst in (self.sv, self.sp, self.sh, self.sx, self.sei,
                    self.sb, self.sc, self.spush, self.scv, self.scei,
                    self.scx, self.screset, self.bkp, self.bkh,
                    self.bkc, self.bkr, self.bkcr):
            lst.clear()

    def _flush_scalars(self) -> None:
        if self.sv:
            self.parts.append((
                np.array(self.sv, np.int64),
                np.array(self.sp, np.int64),
                np.array(self.sh, np.int64),
                np.array(self.sx, np.float64),
                np.array(self.sei, np.int64),
                np.array(self.sb, np.int64),
                np.array(self.sc, np.int64),
                np.array(self.spush, bool),
            ))
            for lst in (self.sv, self.sp, self.sh, self.sx, self.sei,
                        self.sb, self.sc, self.spush):
                lst.clear()

    def _flush_contest(self) -> None:
        if self.scv:
            self.cparts.append((
                np.array(self.scv, np.int64),
                np.array(self.scei, np.int64),
                np.array(self.scx, np.float64),
                np.array(self.screset, bool),
            ))
            for lst in (self.scv, self.scei, self.scx, self.screset):
                lst.clear()

    def add_row(self, v, p, h, x, ei, b, c, pushed) -> None:
        if self.dead:
            return
        self.sv.append(v)
        self.sp.append(p)
        self.sh.append(h)
        self.sx.append(x)
        self.sei.append(ei)
        self.sb.append(b)
        self.sc.append(c)
        self.spush.append(pushed)
        self.rows += 1
        if self.rows > _JOURNAL_MAX_ROWS:
            self._kill()

    def add_rows(self, v, p, h, x, ei, b, c) -> None:
        """A vectorized all-pushed improvement chunk (fast winners)."""
        if self.dead:
            return
        self._flush_scalars()
        self.parts.append((v, p, h, x, ei, b, c, None))
        self.rows += len(v)
        if self.rows > _JOURNAL_MAX_ROWS:
            self._kill()

    def add_crow(self, v, ei, x, reset) -> None:
        if self.dead:
            return
        self.scv.append(v)
        self.scei.append(ei)
        self.scx.append(x)
        self.screset.append(reset)
        self.crows += 1

    def add_crows(self, v, ei, x) -> None:
        """A vectorized all-reset contest chunk (fast winners)."""
        if self.dead:
            return
        self._flush_contest()
        self.cparts.append((v, ei, x, None))
        self.crows += len(v)

    def add_bucket(self, p, h, count) -> None:
        if self.dead:
            return
        self.bkp.append(p)
        self.bkh.append(h)
        self.bkc.append(count)
        self.bkr.append(self.rows)
        self.bkcr.append(self.crows)

    def finalize(self) -> SearchJournal | None:
        if self.dead:
            return None
        self._flush_scalars()
        self._flush_contest()

        def cat(idx, dtype, fill=None):
            arrs = []
            for part in self.parts:
                a = part[idx]
                if a is None:
                    a = np.full(len(part[0]), fill, dtype=dtype)
                arrs.append(np.asarray(a, dtype=dtype))
            if not arrs:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(arrs) if len(arrs) > 1 else arrs[0]

        def ccat(idx, dtype, fill=None):
            arrs = []
            for part in self.cparts:
                a = part[idx]
                if a is None:
                    a = np.full(len(part[0]), fill, dtype=dtype)
                arrs.append(np.asarray(a, dtype=dtype))
            if not arrs:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(arrs) if len(arrs) > 1 else arrs[0]

        return SearchJournal(
            cat(0, np.int64), cat(1, np.int64), cat(2, np.int64),
            cat(3, np.float64), cat(4, np.int64), cat(5, np.int64),
            cat(6, np.int64), cat(7, bool, True),
            ccat(0, np.int64), ccat(1, np.int64), ccat(2, np.float64),
            ccat(3, bool, True),
            np.array(self.bkp, np.int64), np.array(self.bkh, np.int64),
            np.array(self.bkc, np.int64), np.array(self.bkr, np.int64),
            np.array(self.bkcr, np.int64),
        )


@dataclass
class KernelViews:
    """Kernel-facing immutable views of one compiled graph version.

    Cached on the graph (``CompiledGraph._kernel_views``) keyed by
    ``(version, tuple_degree_threshold)``; any in-place patch bumps the
    version and the views rebuild lazily on the next cold search.
    """

    ok: bool
    # numpy mirrors of the edge arrays (absent when not ok)
    e_src: np.ndarray = None
    e_dst: np.ndarray = None
    e_lat: np.ndarray = None
    e_sa: np.ndarray = None
    e_da: np.ndarray = None
    e_op: np.ndarray = None
    e_ph: np.ndarray = None
    # reverse CSR split by op, both preserving emission order per node:
    # intra (python lists, walked by the scalar in-bucket loop) and
    # rest (python lists for the scalar small-flush path, numpy twins
    # for the vectorized bucket gather)
    intra_off: list = None
    intra_lst: list = None
    rest_off: list = None
    rest_lst: list = None
    rest_off_np: np.ndarray = None
    rest_lst_np: np.ndarray = None
    #: per-edge packed ``(src_asn * B + dst_asn) * B`` — adding a
    #: next-ASN in ``[0, B)`` completes a three-tuple membership key
    ab2: np.ndarray = None
    #: per-edge: destination ASN's degree exceeds the tuple threshold
    bdeg: np.ndarray = None
    #: sorted packed three-tuple keys (tuples with any component
    #: outside ``[0, B)`` can never match a graph edge and are dropped)
    tuple_keys: np.ndarray = None
    #: per-node: the node's ASN appears as a chooser in the preference
    #: set — pop-time re-evaluation is a provable no-op for every other
    #: node (see the module docstring), so the kernel skips it there
    needs_reeval: list = None
    needs_reeval_np: np.ndarray = None
    #: per-node: the node has intra in-edges (a bucket with no such
    #: member settles in one vectorized pass, no local heap)
    has_intra: np.ndarray = None
    base: int = 0


def kernel_views(
    cg: CompiledGraph, atlas, tuple_degree_threshold: int
) -> KernelViews:
    """The (cached) kernel views for one graph version + tuple threshold."""
    key = (cg.version, tuple_degree_threshold)
    cached = cg._kernel_views
    if cached is not None and cached[0] == key:
        return cached[1]
    views = _build_views(cg, atlas, tuple_degree_threshold)
    cg._kernel_views = (key, views)
    return views


def refresh_views_after_values(cg: CompiledGraph, cached) -> None:
    """Carry kernel views across a value-only patch instead of a rebuild.

    A value-only patch rewrites latency/loss floats (and may churn the
    three-tuple set) but moves no edges, nodes or CSR structure — so of
    the O(E) views only the ``e_lat`` mirror and the packed tuple keys
    go stale. Called by the patcher with the pre-touch cache tuple;
    re-keys it to the already-bumped graph version.
    """
    (_, thresh), views = cached
    if not views.ok:
        return
    views.e_lat = np.array(cg.e_lat, dtype=np.float64)
    views.tuple_keys = _packed_tuple_keys(cg.atlas.three_tuples, views.base)
    cg._kernel_views = ((cg.version, thresh), views)


def _packed_tuple_keys(three_tuples, base: int) -> np.ndarray:
    """Sorted ``(a*B + b)*B + c`` membership keys; tuples with any
    component outside ``[0, B)`` can never match a graph edge."""
    return np.array(
        sorted(
            (a * base + b) * base + c
            for (a, b, c) in three_tuples
            if 0 <= a < base and 0 <= b < base and 0 <= c < base
        ),
        dtype=np.int64,
    )


def _build_views(cg: CompiledGraph, atlas, thresh: int) -> KernelViews:
    e_sa = np.array(cg.e_src_asn, dtype=np.int64)
    e_da = np.array(cg.e_dst_asn, dtype=np.int64)
    max_asn = int(max(e_sa.max(), e_da.max())) if len(e_sa) else 0
    base = max_asn + 1
    # three packed components must fit one signed 64-bit key
    if base ** 3 >= 2 ** 62:
        return KernelViews(ok=False)
    e_src = np.array(cg.e_src, dtype=np.int64)
    e_dst = np.array(cg.e_dst, dtype=np.int64)
    e_op = np.array(cg.e_op, dtype=np.int64)

    # Split the reverse CSR by op, preserving per-node emission order.
    n = cg.n_nodes
    rev_lst = np.array(cg.rev_lst, dtype=np.int64)
    is_intra = e_op[rev_lst] == OP_INTRA if len(rev_lst) else np.zeros(0, bool)
    intra_ids = rev_lst[is_intra]
    rest_ids = rev_lst[~is_intra]
    intra_counts = np.bincount(e_dst[intra_ids], minlength=n)
    rest_counts = np.bincount(e_dst[rest_ids], minlength=n)
    intra_off = np.concatenate(([0], np.cumsum(intra_counts, dtype=np.int64)))
    rest_off = np.concatenate(([0], np.cumsum(rest_counts, dtype=np.int64)))

    degrees = atlas.as_degrees
    bdeg = np.fromiter(
        (degrees.get(asn, 0) > thresh for asn in cg.e_dst_asn),
        dtype=bool,
        count=len(cg.e_dst_asn),
    )
    tuple_keys = _packed_tuple_keys(atlas.three_tuples, base)
    pref_choosers = {a for (a, _, _) in atlas.preferences}
    needs_reeval = [asn in pref_choosers for asn in cg.node_asn]
    return KernelViews(
        ok=True,
        e_src=e_src,
        e_dst=e_dst,
        e_lat=np.array(cg.e_lat, dtype=np.float64),
        e_sa=e_sa,
        e_da=e_da,
        e_op=e_op,
        e_ph=np.array(cg.e_phase, dtype=np.int64),
        intra_off=intra_off.tolist(),
        intra_lst=intra_ids.tolist(),
        rest_off=rest_off.tolist(),
        rest_lst=rest_ids.tolist(),
        rest_off_np=rest_off,
        rest_lst_np=rest_ids,
        has_intra=intra_counts > 0,
        ab2=(e_sa * base + e_da) * base,
        bdeg=bdeg,
        tuple_keys=tuple_keys,
        needs_reeval=needs_reeval,
        needs_reeval_np=np.array(needs_reeval, dtype=bool),
        base=base,
    )


def run_kernel(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    root: int,
    pool: SearchStatePool | None = None,
    record: bool = False,
    use_jit: bool = False,
):
    """Run the search kernel; returns ``(phase, eff, exitc, parent,
    nxt, journal)`` — five numpy state arrays bit-identical to the
    scalar spec loop plus the replay journal (None unless ``record``
    and the bucket engine ran) — or None when the graph's ASNs don't
    pack (caller falls back).

    Dispatches on graph scale: below ``_VECTOR_GRAPH_MIN`` deferrable
    (non-intra) edges the bucket/batch machinery costs more than it
    saves, so small graphs run :func:`_run_small` — the spec loop with
    the kernel's exact shortcuts (contest-list re-evaluation, hoisted
    phase/hops prefilter, op-split compose) but immediate scalar
    relaxation. Large graphs run the phase-major bucket queue
    (:func:`_run_buckets`) with vectorized frontier flushes.
    """
    views = kernel_views(cg, atlas, config.tuple_degree_threshold)
    if not views.ok:
        return None
    if PROFILE is None:
        if len(views.rest_lst) < _VECTOR_GRAPH_MIN:
            return _run_small(cg, atlas, config, providers, root, views, pool)
        return _run_buckets(
            cg, atlas, config, providers, root, views, pool, record, use_jit
        )
    from time import perf_counter

    t0 = perf_counter()
    if len(views.rest_lst) < _VECTOR_GRAPH_MIN:
        out = _run_small(cg, atlas, config, providers, root, views, pool)
    else:
        out = _run_buckets(
            cg, atlas, config, providers, root, views, pool, record, use_jit
        )
    PROFILE["search_s"] = PROFILE.get("search_s", 0.0) + perf_counter() - t0
    return out


def _refold_contest(u, lst, parent, nxt, exitc, e_sa, e_da, e_dst, prefs):
    """Pop-time refold of a node's contest list (see module docstring).

    ``lst`` holds ``(edge_id, exit_cost)`` for every validity-passing
    candidate whose (phase, hops) equals the node's final key; folding
    them in edge-id order from the current incumbent replays the spec's
    pop-time re-evaluation exactly (all other fwd candidates are
    provable no-ops there). The candidate's next ASN equals its choice
    ASN: the crossing target's ASN, or the settled neighbor's inherited
    next ASN for intra edges.
    """
    for ei, nx in sorted(lst):
        a = e_sa[ei]
        b = e_da[ei]
        nn = b if b != a else nxt[e_dst[ei]]
        pi = parent[u]
        if pi >= 0:
            pd = e_da[pi]
            ic = pd if pd != a else nxt[u]
        else:
            ic = -1
        if nn != -1 and ic != -1 and nn != ic:
            if (a, nn, ic) in prefs:
                pass
            elif (a, ic, nn) in prefs:
                continue
            elif nx >= exitc[u]:
                continue
        elif nx >= exitc[u]:
            continue
        exitc[u] = nx
        parent[u] = ei
        nxt[u] = nn


def _run_small(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    root: int,
    views: KernelViews,
    pool: SearchStatePool | None = None,
):
    """The spec loop with the kernel's exact shortcuts, for graphs too
    small to amortize per-bucket numpy calls. Bit-for-bit identical to
    ``_search_compiled``: relaxation is immediate and walks the unsplit
    reverse CSR, so heap counters advance exactly like the spec's; the
    contest-list re-evaluation and the hoisted ``(phase, hops)``
    prefilter are outcome-preserving (module docstring). State runs in
    python lists (faster for scalar access) and lands in pooled arrays
    at the end."""
    use_tuples = config.use_three_tuples
    use_prefs = config.use_preferences
    thresh = config.tuple_degree_threshold
    tuples = atlas.three_tuples
    dget = atlas.as_degrees.get
    prefs = atlas.preferences
    e_src = cg.e_src
    e_dst = cg.e_dst
    e_lat = cg.e_lat
    e_sa = cg.e_src_asn
    e_da = cg.e_dst_asn
    e_op = cg.e_op
    e_ph = cg.e_phase
    rev_off = cg.rev_off
    rev_lst = cg.rev_lst
    needs_reeval = views.needs_reeval

    n = cg.n_nodes
    phase = [0] * n
    eff = [0] * n
    exitc = [0.0] * n
    parent = [-1] * n
    nxt = [-1] * n
    contest: list = [None] * n
    finalized = bytearray(n)
    heappush = heapq.heappush
    heappop = heapq.heappop
    phase[root] = 1
    heap: list[tuple[int, int, float, int, int]] = [(1, 0, 0.0, 0, root)]
    count = 1

    while heap:
        u = heappop(heap)[4]
        if finalized[u]:
            continue
        if use_prefs and u != root:
            lst = contest[u]
            if lst is not None and len(lst) > 1:
                _refold_contest(
                    u, lst, parent, nxt, exitc, e_sa, e_da, e_dst, prefs
                )
        finalized[u] = 1
        sp = phase[u]
        se = eff[u]
        sx = exitc[u]
        sn = nxt[u]
        se1 = se + 1
        for ei in rev_lst[rev_off[u]:rev_off[u + 1]]:
            v = e_src[ei]
            if finalized[v]:
                continue
            op = e_op[ei]
            if op == OP_INTRA:
                np_ = sp
                ne = se
            elif op == OP_INTER:
                np_ = e_ph[ei]
                ne = se1
            else:
                np_ = sp
                ne = se1
            ip = phase[v]
            if ip and (np_ > ip or (np_ == ip and ne > eff[v])):
                continue
            a = e_sa[ei]
            b = e_da[ei]
            if a != b:
                if (
                    use_tuples
                    and sn != -1
                    and b != sn
                    and dget(b, 0) > thresh
                    and (a, b, sn) not in tuples
                ):
                    continue
                if providers is not None and sn == -1 and a not in providers:
                    continue
                nn = b
            else:
                nn = sn
            nx = sx + e_lat[ei] if op <= OP_LATE_EXIT else 0.0
            tie = ip and np_ == ip and ne == eff[v]
            if tie:
                if use_prefs:
                    if needs_reeval[v]:
                        contest[v].append((ei, nx))
                    cc = nn
                    pi = parent[v]
                    if pi >= 0:
                        pd = e_da[pi]
                        ic = pd if pd != a else nxt[v]
                    else:
                        ic = -1
                    if cc != -1 and ic != -1 and cc != ic:
                        if (a, cc, ic) in prefs:
                            pass
                        elif (a, ic, cc) in prefs:
                            continue
                        elif nx >= exitc[v]:
                            continue
                    elif nx >= exitc[v]:
                        continue
                elif nx >= exitc[v]:
                    continue
            elif use_prefs and needs_reeval[v]:
                contest[v] = [(ei, nx)]
            phase[v] = np_
            eff[v] = ne
            exitc[v] = nx
            parent[v] = ei
            nxt[v] = nn
            heappush(heap, (np_, ne, nx, count, v))
            count += 1

    out = _acquire_state(pool, n, reset=False)
    out[0][:] = phase
    out[1][:] = eff
    out[2][:] = exitc
    out[3][:] = parent
    out[4][:] = nxt
    return out[0], out[1], out[2], out[3], out[4], None


def _run_buckets(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    root: int,
    views: KernelViews,
    pool: SearchStatePool | None = None,
    record: bool = False,
    use_jit: bool = False,
):
    """A fresh cold search through the phase-major bucket engine."""
    n = cg.n_nodes
    phase, eff, exitc, parent, nxt = _acquire_state(pool, n, reset=True)
    fin = (
        pool.fin_scratch(n) if pool is not None else np.zeros(n, dtype=bool)
    )
    contest: list = [None] * n
    rec = _JournalRecorder() if record else None
    phase[root] = 1
    if rec is not None:
        rec.add_row(root, 1, 0, 0.0, -1, -1, 0, True)
    buckets: dict = {}
    bucket_sc: dict = {(1, 0): [(0.0, 0, root)]}
    bucket_keys: list = [(1, 0)]
    state = (
        phase, eff, exitc, parent, nxt, fin, contest,
        buckets, bucket_sc, bucket_keys, 1,
    )
    return _bucket_engine(
        cg, atlas, config, providers, views, state, rec, use_jit
    )


def repair_kernel(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    states,
    touched_eids,
    pool: SearchStatePool | None = None,
    record: bool = False,
):
    """Bounded re-relaxation repair of a journaled search after a
    value-only patch (see the module docstring for the exactness
    argument). ``states`` carries the pre-patch arrays + journal;
    ``touched_eids`` the patch's relevant edge ids (changed latencies
    and effective tuple-churn edges). Returns the same 6-tuple as
    :func:`run_kernel`, bit-for-bit equal to a cold re-search on the
    patched graph, or None when repair doesn't apply (caller falls back
    to the dirty re-search path). The caller owns recycling the old
    state arrays afterwards."""
    j = getattr(states, "journal", None)
    if j is None or states.root_id is None:
        return None
    n = cg.n_nodes
    old_phase = states.phase
    if not isinstance(old_phase, np.ndarray) or len(old_phase) != n:
        return None
    views = kernel_views(cg, atlas, config.tuple_degree_threshold)
    if not views.ok:
        return None
    eids = np.asarray(touched_eids, dtype=np.int64)
    if eids.size == 0:
        return None
    u = views.e_dst[eids]
    pu = old_phase[u]
    reached = pu > 0
    if not reached.any():
        return None
    ur = u[reached]
    k0 = int(
        ((old_phase[ur] << _K2_SHIFT) | states.eff[ur]).min()
    )
    bk_key = (j.bk_p << _K2_SHIFT) | j.bk_h
    i = int(np.searchsorted(bk_key, k0))
    if i >= len(bk_key) or int(bk_key[i]) != k0:
        return None
    count0 = int(j.bk_count[i])
    rows0 = int(j.bk_rows[i])
    crows0 = int(j.bk_crows[i])

    # Seed the array state at the K0 watermark: nodes finalized strictly
    # before K0 keep their (identical-by-theorem) final states; every
    # other node takes its last journaled improvement before the
    # watermark, or stays unreached.
    phase, eff, exitc, parent, nxt = _acquire_state(pool, n, reset=True)
    okey = (old_phase << _K2_SHIFT) | states.eff
    fin = (old_phase > 0) & (okey < k0)
    fidx = np.flatnonzero(fin)
    phase[fidx] = old_phase[fidx]
    eff[fidx] = states.eff[fidx]
    exitc[fidx] = states.exitc[fidx]
    parent[fidx] = states.parent[fidx]
    nxt[fidx] = states.nxt[fidx]
    vrows = j.v[:rows0]
    live_rows = np.flatnonzero(~fin[vrows])
    if live_rows.size:
        vv = vrows[live_rows]
        uq, first_rev = np.unique(vv[::-1], return_index=True)
        last_rows = live_rows[live_rows.size - 1 - first_rev]
        phase[uq] = j.p[last_rows]
        eff[uq] = j.h[last_rows]
        exitc[uq] = j.x[last_rows]
        parent[uq] = j.ei[last_rows]
        nxt[uq] = j.b[last_rows]

    contest: list = [None] * n
    if config.use_preferences and crows0:
        cv = j.cv[:crows0]
        keep = np.flatnonzero(~fin[cv])
        if keep.size:
            cvl = cv[keep].tolist()
            ceil_ = j.cei[keep].tolist()
            cxl = j.cx[keep].tolist()
            crl = j.creset[keep].tolist()
            for t in range(len(cvl)):
                vtx = cvl[t]
                if crl[t] or contest[vtx] is None:
                    contest[vtx] = [(ceil_[t], cxl[t])]
                else:
                    contest[vtx].append((ceil_[t], cxl[t]))

    # Rebuild the pending buckets at the watermark from the journal's
    # pushed rows with key >= K0 (stale entries included — the cold run
    # pops and skips them identically).
    rowkey = (j.p[:rows0] << _K2_SHIFT) | j.h[:rows0]
    psel = np.flatnonzero(j.pushed[:rows0] & (rowkey >= k0))
    buckets: dict = {}
    bucket_keys: list = []
    if psel.size:
        pk = rowkey[psel]
        po = np.argsort(pk, kind="stable")
        pks = pk[po]
        kheads = np.concatenate(
            ([0], np.flatnonzero(pks[1:] != pks[:-1]) + 1)
        )
        bounds = np.append(kheads, len(pks))
        for t in range(len(kheads)):
            seg = psel[po[kheads[t]:bounds[t + 1]]]
            kv = int(pks[kheads[t]])
            key = (kv >> _K2_SHIFT, kv & _K2_MASK)
            buckets[key] = [(j.x[seg], j.c[seg], j.v[seg])]
            bucket_keys.append(key)
        heapq.heapify(bucket_keys)

    rec = None
    if record:
        rec = _JournalRecorder()
        rec.seed(j, rows0, crows0, i)
    state = (
        phase, eff, exitc, parent, nxt, fin, contest,
        buckets, {}, bucket_keys, count0,
    )
    return _bucket_engine(
        cg, atlas, config, providers, views, state, rec, False
    )


def _bucket_engine(
    cg: CompiledGraph,
    atlas,
    config,
    providers: frozenset | None,
    views: KernelViews,
    state: tuple,
    rec: _JournalRecorder | None,
    use_jit: bool = False,
):
    """The phase-major bucket queue with vectorized frontier flushes
    over flat array state (see the module docstring for the equivalence
    argument). ``state`` carries the (possibly mid-search, for repair
    replay) engine state: the five state arrays, finalized flags,
    contest lists, pending buckets (column chunks + scalar staging),
    the bucket-key heap and the entry counter."""
    (phase, eff, exitc, parent, nxt, fin, contest,
     buckets, bucket_sc, bucket_keys, count) = state
    use_tuples = config.use_three_tuples
    use_prefs = config.use_preferences
    thresh = config.tuple_degree_threshold
    tuples = atlas.three_tuples
    dget = atlas.as_degrees.get
    prefs = atlas.preferences
    record = rec is not None
    # scalar-path locals (python lists)
    e_src = cg.e_src
    e_dst = cg.e_dst
    e_lat = cg.e_lat
    e_sa = cg.e_src_asn
    e_da = cg.e_dst_asn
    e_op = cg.e_op
    e_ph = cg.e_phase
    intra_off = views.intra_off
    intra_lst = views.intra_lst
    rest_off = views.rest_off
    rest_lst = views.rest_lst
    needs_reeval = views.needs_reeval
    # vector-path locals
    rest_off_np = views.rest_off_np
    rest_lst_np = views.rest_lst_np
    e_src_np = views.e_src
    e_lat_np = views.e_lat
    e_sa_np = views.e_sa
    e_da_np = views.e_da
    e_op_np = views.e_op
    e_ph_np = views.e_ph
    ab2_np = views.ab2
    bdeg_np = views.bdeg
    tuple_keys = views.tuple_keys
    n_tuple_keys = len(tuple_keys)
    needs_reeval_np = views.needs_reeval_np
    node_has_intra = views.has_intra
    providers_arr = (
        np.fromiter(sorted(providers), dtype=np.int64, count=len(providers))
        if providers is not None
        else None
    )
    jit_compose = None
    if use_jit and not use_tuples and providers_arr is None:
        from repro.core import jit as _jit

        jit_compose = _jit.compose
    heappush = heapq.heappush
    heappop = heapq.heappop

    def push_entry(p, h, x, c, v):
        key = (p, h)
        lst = bucket_sc.get(key)
        if lst is None:
            bucket_sc[key] = [(x, c, v)]
            if key not in buckets:
                heappush(bucket_keys, key)
        else:
            lst.append((x, c, v))

    def relax_rest_scalar(u, sp, se, sx, sn, base_counter):
        """Scalar deferred relaxation for one settled node (small-flush
        path); the rest-edge branch of ``_run_small`` verbatim, with
        counters pre-reserved in generation order."""
        ne = se + 1
        c = base_counter
        for ei in rest_lst[rest_off[u]:rest_off[u + 1]]:
            c += 1
            v = e_src[ei]
            if fin[v]:
                continue
            op = e_op[ei]
            np_ = e_ph[ei] if op == OP_INTER else sp
            ip = phase[v]
            if ip and (np_ > ip or (np_ == ip and ne > eff[v])):
                continue
            a = e_sa[ei]
            b = e_da[ei]
            # all non-intra edges cross AS boundaries (a != b)
            if (
                use_tuples
                and sn != -1
                and b != sn
                and dget(b, 0) > thresh
                and (a, b, sn) not in tuples
            ):
                continue
            if providers is not None and sn == -1 and a not in providers:
                continue
            nx = sx + e_lat[ei] if op == OP_LATE_EXIT else 0.0
            tie = ip and np_ == ip and ne == eff[v]
            if tie:
                if use_prefs:
                    if needs_reeval[v]:
                        contest[v].append((ei, nx))
                        if record:
                            rec.add_crow(v, ei, nx, False)
                    pi = parent[v]
                    if pi >= 0:
                        pd = e_da[pi]
                        ic = pd if pd != a else nxt[v]
                    else:
                        ic = -1
                    if b != -1 and ic != -1 and b != ic:
                        if (a, b, ic) in prefs:
                            pass
                        elif (a, ic, b) in prefs:
                            continue
                        elif nx >= exitc[v]:
                            continue
                    elif nx >= exitc[v]:
                        continue
                elif nx >= exitc[v]:
                    continue
            elif use_prefs and needs_reeval[v]:
                contest[v] = [(ei, nx)]
                if record:
                    rec.add_crow(v, ei, nx, True)
            phase[v] = np_
            eff[v] = ne
            exitc[v] = nx
            parent[v] = ei
            nxt[v] = b
            if record:
                rec.add_row(v, np_, ne, nx, ei, b, c - 1, True)
            push_entry(np_, ne, nx, c - 1, v)

    def fold_group(rows, v_l, ei_l, p_l, h_l, x_l, a_l, b_l, c_l):
        """Scalar winner fold for one contested target group, candidate
        rows in generation order; pushes the minimal improving entry."""
        vtx = v_l[rows[0]]
        best_entry = None
        best_row = -1
        jrows = [] if record else None
        for j in rows:
            cpj = p_l[j]
            chj = h_l[j]
            cxj = x_l[j]
            ip = phase[vtx]
            tie = False
            if ip:
                ie = eff[vtx]
                if cpj != ip or chj != ie:
                    if cpj > ip or (cpj == ip and chj > ie):
                        continue
                else:
                    tie = True
                    aa = a_l[j]
                    cc = b_l[j]
                    if use_prefs:
                        if needs_reeval[vtx]:
                            contest[vtx].append((ei_l[j], cxj))
                            if record:
                                rec.add_crow(vtx, ei_l[j], cxj, False)
                        pi = parent[vtx]
                        if pi >= 0:
                            pd = e_da[pi]
                            ic = pd if pd != aa else nxt[vtx]
                        else:
                            ic = -1
                        if cc != -1 and ic != -1 and cc != ic:
                            if (aa, cc, ic) in prefs:
                                pass
                            elif (aa, ic, cc) in prefs:
                                continue
                            elif cxj >= exitc[vtx]:
                                continue
                        elif cxj >= exitc[vtx]:
                            continue
                    elif cxj >= exitc[vtx]:
                        continue
            if not tie and use_prefs and needs_reeval[vtx]:
                contest[vtx] = [(ei_l[j], cxj)]
                if record:
                    rec.add_crow(vtx, ei_l[j], cxj, True)
            phase[vtx] = cpj
            eff[vtx] = chj
            exitc[vtx] = cxj
            parent[vtx] = ei_l[j]
            nxt[vtx] = b_l[j]
            if record:
                jrows.append((vtx, cpj, chj, cxj, ei_l[j], b_l[j], c_l[j]))
            entry = (cpj, chj, cxj, c_l[j])
            if best_entry is None or entry < best_entry:
                best_entry = entry
                if record:
                    best_row = len(jrows) - 1
        if best_entry is not None:
            push_entry(*best_entry, vtx)
        if record:
            for t, r in enumerate(jrows):
                rec.add_row(*r, t == best_row)

    def flush(s):
        """Batch-relax all deferred (non-intra) edges of a finished
        bucket (``s``: settled node ids, int64 array in settle order):
        vectorized composition + validity + prefilter over the state
        arrays, packed ``minimum.reduceat`` winner selection per target
        with scatter winner writes, scalar folds only for contested
        targets — all in generation order."""
        nonlocal count
        cnt = rest_off_np[s + 1] - rest_off_np[s]
        tot = int(cnt.sum())
        if tot == 0:
            return
        base = count
        count += tot
        if tot < _VECTOR_MIN:
            c = base
            for u in s.tolist():
                relax_rest_scalar(
                    u, int(phase[u]), int(eff[u]), float(exitc[u]),
                    int(nxt[u]), c,
                )
                c += rest_off[u + 1] - rest_off[u]
            return
        startpos = np.repeat(rest_off_np[s], cnt)
        within = np.arange(tot, dtype=np.int64) - np.repeat(
            np.cumsum(cnt) - cnt, cnt
        )
        eids = rest_lst_np[startpos + within]
        sp = np.repeat(phase[s], cnt)
        se = np.repeat(eff[s], cnt)
        sx = np.repeat(exitc[s], cnt)
        sn = np.repeat(nxt[s], cnt)
        if jit_compose is not None:
            v, b, cp, ch, cx, keep = jit_compose(
                eids, sp, se, sx, e_src_np, e_da_np, e_op_np, e_ph_np,
                e_lat_np, phase, eff, fin,
            )
        else:
            v = e_src_np[eids]
            b = e_da_np[eids]
            pv = phase[v]
            ev = eff[v]
            valid = ~fin[v]
            if use_tuples:
                chk = (sn >= 0) & (b != sn) & bdeg_np[eids]
                if n_tuple_keys:
                    keys = ab2_np[eids] + sn
                    pos = np.searchsorted(tuple_keys, keys)
                    hit = tuple_keys[np.minimum(pos, n_tuple_keys - 1)] == keys
                    valid &= ~chk | hit
                else:
                    valid &= ~chk
            if providers_arr is not None:
                a_np = e_sa_np[eids]
                valid &= (sn != -1) | np.isin(a_np, providers_arr)
            op = e_op_np[eids]
            cp = np.where(op == OP_INTER, e_ph_np[eids], sp)
            ch = se + 1
            cx = np.where(op == OP_LATE_EXIT, sx + e_lat_np[eids], 0.0)
            keep = valid & ((pv == 0) | (cp < pv) | ((cp == pv) & (ch <= ev)))
        idx = np.flatnonzero(keep)
        if idx.size == 0:
            return
        # group by target; stable sort keeps generation order per group
        vk = v[idx]
        order = np.argsort(vk, kind="stable")
        sel = idx[order]
        v_sorted = vk[order]
        heads = np.concatenate(
            ([0], np.flatnonzero(v_sorted[1:] != v_sorted[:-1]) + 1)
        )
        group_sizes = np.diff(np.concatenate((heads, [len(sel)])))
        k2 = (cp[sel] << _K2_SHIFT) | ch[sel]
        gmin = np.minimum.reduceat(k2, heads)
        at_min = k2 == np.repeat(gmin, group_sizes)
        min_counts = np.add.reduceat(at_min.astype(np.int64), heads)
        # incumbent packed key per group (unreached -> +inf sentinel)
        hv = v_sorted[heads]
        pv_h = phase[hv]
        inc_k2 = np.where(
            pv_h == 0,
            np.int64(2 ** 62),
            (pv_h << _K2_SHIFT) | eff[hv],
        )
        if use_prefs:
            # fast path: unique winner key strictly below the incumbent —
            # no preference can fire, the packed-key winner is the fold
            fast_group = (min_counts == 1) & (gmin < inc_k2)
            slow_heads = heads[~fast_group]
            frows = np.flatnonzero(at_min & np.repeat(fast_group, group_sizes))
        else:
            # without preferences ties resolve by strict exit-cost, so
            # the full lexicographic (key, cost, order) minimum is the
            # fold for any group; only incumbent ties need the cost check
            o2 = np.lexsort((cx[sel], k2, v_sorted))
            first = np.searchsorted(v_sorted[o2], hv)
            frows_all = o2[first]
            fsel = gmin <= inc_k2
            eq = gmin == inc_k2
            if eq.any():
                fsel &= (~eq) | (cx[sel][frows_all] < exitc[hv])
            frows = frows_all[fsel]
            # the prefilter caps every candidate key at the incumbent's,
            # so a rejected group is all exact ties losing the strict
            # exit-cost test: no improving fold exists, drop it outright
            slow_heads = np.zeros(0, dtype=np.int64)
        if len(frows):
            w_sel = sel[frows]
            w_v = v_sorted[frows]
            w_p = cp[w_sel]
            w_h = ch[w_sel]
            w_x = cx[w_sel]
            w_ei = eids[w_sel]
            w_b = b[w_sel]
            w_c = base + w_sel
            phase[w_v] = w_p
            eff[w_v] = w_h
            exitc[w_v] = w_x
            parent[w_v] = w_ei
            nxt[w_v] = w_b
            if record:
                rec.add_rows(w_v, w_p, w_h, w_x, w_ei, w_b, w_c)
            if use_prefs:
                m = needs_reeval_np[w_v]
                if m.any():
                    rv = w_v[m].tolist()
                    rei = w_ei[m].tolist()
                    rx = w_x[m].tolist()
                    for t in range(len(rv)):
                        contest[rv[t]] = [(rei[t], rx[t])]
                    if record:
                        rec.add_crows(w_v[m], w_ei[m], w_x[m])
            nw = len(w_v)
            if nw < _CHUNK_MIN:
                w_p_l = w_p.tolist()
                w_h_l = w_h.tolist()
                w_x_l = w_x.tolist()
                w_c_l = w_c.tolist()
                w_v_l = w_v.tolist()
                for t in range(nw):
                    push_entry(
                        w_p_l[t], w_h_l[t], w_x_l[t], w_c_l[t], w_v_l[t]
                    )
            else:
                kk = (w_p << _K2_SHIFT) | w_h
                ko = np.argsort(kk, kind="stable")
                kks = kk[ko]
                kheads = np.concatenate(
                    ([0], np.flatnonzero(kks[1:] != kks[:-1]) + 1)
                )
                bounds = np.append(kheads, nw)
                for t in range(len(kheads)):
                    seg = ko[kheads[t]:bounds[t + 1]]
                    kv = int(kks[kheads[t]])
                    key = (kv >> _K2_SHIFT, kv & _K2_MASK)
                    chunk = (w_x[seg], w_c[seg], w_v[seg])
                    lst = buckets.get(key)
                    if lst is None:
                        buckets[key] = [chunk]
                        if key not in bucket_sc:
                            heappush(bucket_keys, key)
                    else:
                        lst.append(chunk)
        if len(slow_heads):
            sizes = group_sizes[np.searchsorted(heads, slow_heads)]
            v_l = v_sorted.tolist()
            ei_l = eids[sel].tolist()
            p_l = cp[sel].tolist()
            h_l = ch[sel].tolist()
            x_l = cx[sel].tolist()
            a_l = e_sa_np[eids][sel].tolist()
            b_l = b[sel].tolist()
            c_l = (base + sel).tolist()
            for h0, size in zip(slow_heads.tolist(), sizes.tolist()):
                fold_group(
                    range(h0, h0 + size), v_l, ei_l, p_l, h_l, x_l,
                    a_l, b_l, c_l,
                )

    settled_batch: list[int] = []

    def settle_serial(local_heap):
        """In-bucket serial loop for buckets with live intra edges:
        settle by (cost, counter), relaxing intra (same-AS) edges
        immediately — they stay inside the bucket."""
        nonlocal count
        while local_heap:
            entry = heappop(local_heap)
            u = entry[2]
            if fin[u]:
                continue
            if use_prefs:
                lst = contest[u]
                if lst is not None and len(lst) > 1:
                    _refold_contest(
                        u, lst, parent, nxt, exitc, e_sa, e_da, e_dst, prefs
                    )
            fin[u] = True
            settled_batch.append(u)
            sp = phase[u]
            se = eff[u]
            sx = exitc[u]
            sn = nxt[u]
            for ei in intra_lst[intra_off[u]:intra_off[u + 1]]:
                v = e_src[ei]
                if fin[v]:
                    continue
                nx = sx + e_lat[ei]
                ip = phase[v]
                if ip and (sp > ip or (sp == ip and se > eff[v])):
                    continue
                tie = ip and sp == ip and se == eff[v]
                if tie:
                    if use_prefs:
                        if needs_reeval[v]:
                            contest[v].append((ei, nx))
                            if record:
                                rec.add_crow(v, ei, nx, False)
                        # intra edges never cross: the candidate next
                        # hop is the inherited next ASN
                        aa = e_sa[ei]
                        pi = parent[v]
                        if pi >= 0:
                            pd = e_da[pi]
                            ic = pd if pd != aa else nxt[v]
                        else:
                            ic = -1
                        if sn != -1 and ic != -1 and sn != ic:
                            if (aa, sn, ic) in prefs:
                                pass
                            elif (aa, ic, sn) in prefs:
                                continue
                            elif nx >= exitc[v]:
                                continue
                        elif nx >= exitc[v]:
                            continue
                    elif nx >= exitc[v]:
                        continue
                elif use_prefs and needs_reeval[v]:
                    contest[v] = [(ei, nx)]
                    if record:
                        rec.add_crow(v, ei, nx, True)
                phase[v] = sp
                eff[v] = se
                exitc[v] = nx
                parent[v] = ei
                nxt[v] = sn
                if record:
                    rec.add_row(v, sp, se, nx, ei, sn, count, True)
                heappush(local_heap, (nx, count, v))
                count += 1

    while bucket_keys:
        key = heappop(bucket_keys)
        chunks = buckets.pop(key, None)
        sc = bucket_sc.pop(key, None)
        if chunks is None:
            # scalar-only bucket: python tuple sort beats tiny arrays
            sc.sort()
            live = [e for e in sc if not fin[e[2]]]
            if not live:
                continue
            if record:
                rec.add_bucket(int(key[0]), int(key[1]), count)
            if node_has_intra[[e[2] for e in live]].any():
                # a sorted list already satisfies the heap invariant
                settle_serial(live)
            else:
                for e in live:
                    u = e[2]
                    if fin[u]:
                        continue
                    if use_prefs:
                        lst = contest[u]
                        if lst is not None and len(lst) > 1:
                            _refold_contest(
                                u, lst, parent, nxt, exitc, e_sa, e_da,
                                e_dst, prefs,
                            )
                    fin[u] = True
                    settled_batch.append(u)
        else:
            if sc:
                chunks.append((
                    np.array([e[0] for e in sc], np.float64),
                    np.array([e[1] for e in sc], np.int64),
                    np.array([e[2] for e in sc], np.int64),
                ))
            if len(chunks) == 1:
                x_b, c_b, v_b = chunks[0]
            else:
                x_b = np.concatenate([ck[0] for ck in chunks])
                c_b = np.concatenate([ck[1] for ck in chunks])
                v_b = np.concatenate([ck[2] for ck in chunks])
            order = np.lexsort((c_b, x_b))
            v_ord = v_b[order]
            uniq, first_idx = np.unique(v_ord, return_index=True)
            live_first = first_idx[~fin[uniq]]
            if live_first.size == 0:
                continue
            live_first.sort()
            live_v = v_ord[live_first]
            if record:
                rec.add_bucket(int(key[0]), int(key[1]), count)
            if node_has_intra[live_v].any():
                x_l = x_b[order].tolist()
                c_l = c_b[order].tolist()
                v_l = v_ord.tolist()
                # all (possibly stale/duplicate) entries feed the local
                # heap; staleness resolves via the finalized check, and
                # a sorted list already satisfies the heap invariant
                settle_serial(list(zip(x_l, c_l, v_l)))
            else:
                if use_prefs:
                    for u in live_v.tolist():
                        lst = contest[u]
                        if lst is not None and len(lst) > 1:
                            _refold_contest(
                                u, lst, parent, nxt, exitc, e_sa, e_da,
                                e_dst, prefs,
                            )
                fin[live_v] = True
                flush(live_v)
                continue
        if settled_batch:
            flush(
                np.fromiter(
                    settled_batch, dtype=np.int64, count=len(settled_batch)
                )
            )
            settled_batch = []

    journal = rec.finalize() if record else None
    return phase, eff, exitc, parent, nxt, journal
