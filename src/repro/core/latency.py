"""End-to-end latency estimation (Section 6.3.2).

iNano composes its link latency annotations along the *predicted forward
and reverse* paths to estimate the RTT between two end-hosts. Both
directions are predicted independently — that is the whole point of the
FROM_SRC/TO_DST machinery.
"""

from __future__ import annotations

from repro.core.predictor import INanoPredictor, PredictedPath


def compose_rtt_ms(forward: PredictedPath, reverse: PredictedPath) -> float:
    """RTT estimate from two one-way predicted paths."""
    return forward.latency_ms + reverse.latency_ms


def predict_rtt_ms(
    predictor: INanoPredictor, src_prefix_index: int, dst_prefix_index: int
) -> float | None:
    """Predict the RTT between two prefixes; None if either direction fails."""
    forward = predictor.predict_or_none(src_prefix_index, dst_prefix_index)
    reverse = predictor.predict_or_none(dst_prefix_index, src_prefix_index)
    if forward is None or reverse is None:
        return None
    return compose_rtt_ms(forward, reverse)
