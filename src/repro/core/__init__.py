"""iNano's core contribution: route prediction from the compact atlas.

`repro.core.predictor` implements the paper's Section 4 in full: the
GRAPH algorithm (phased, valley-free, early/late-exit Dijkstra over
up/down node pairs) and the four corrective components that turn it into
iNano — the FROM_SRC/TO_DST asymmetry planes (4.3.1), the observed AS
3-tuple export check (4.3.2), relationship-agnostic AS preferences
(4.3.3), and per-AS/per-prefix provider constraints (4.3.4). Each
component is a config flag so Figure 5's ablation ladder falls out
directly.

`repro.core.latency` / `repro.core.loss` compose link annotations along
predicted forward and reverse paths into end-to-end estimates;
`repro.core.tcp` (PFTK) and `repro.core.mos` (E-model) turn those into
the application-level metrics used by the case studies.
"""

from repro.core.compiled import CompiledGraph
from repro.core.costs import PathCost
from repro.core.graph import PredictionGraph
from repro.core.predictor import (
    INanoPredictor,
    PredictedPath,
    PredictorConfig,
)
from repro.core.latency import predict_rtt_ms
from repro.core.loss import predict_path_loss, predict_round_trip_loss
from repro.core.tcp import download_time_seconds, pftk_throughput_bps
from repro.core.mos import mos_score

__all__ = [
    "CompiledGraph",
    "PathCost",
    "PredictionGraph",
    "INanoPredictor",
    "PredictedPath",
    "PredictorConfig",
    "predict_rtt_ms",
    "predict_path_loss",
    "predict_round_trip_loss",
    "download_time_seconds",
    "pftk_throughput_bps",
    "mos_score",
]
