"""Optional numba acceleration for the search kernel (stretch layer).

``kernel="numba"`` on :class:`~repro.core.predictor.INanoPredictor`
opts into JIT-compiled inner loops for the bucket engine's candidate
composition. The dependency is strictly optional: when numba is not
importable (the default deployment), everything here degrades to
``available() == False`` / ``compose is None`` and the predictor runs
the plain numpy vector kernel — same results, no import error. The
randomized property suite runs the ``numba`` kernel mode through the
same bit-for-bit equality checks, so environments that do ship numba
verify the compiled path against the scalar spec.

The JIT path only covers configs without three-tuple or provider
gates (set-membership tests don't lower); gated configs fall back to
the numpy composition inside the engine per flush.
"""

from __future__ import annotations

_numba = None
_checked = False

#: JIT-compiled candidate composition, or None when numba is absent.
#: Signature: ``compose(eids, sp, se, sx, e_src, e_da, e_op, e_ph,
#: e_lat, phase, eff, fin) -> (v, b, cp, ch, cx, keep)`` — the exact
#: arrays the engine's numpy composition block produces for configs
#: without tuple/provider gates.
compose = None


def available() -> bool:
    """True when numba imports and the JIT layer compiled."""
    _ensure()
    return compose is not None


def _ensure() -> None:
    global _numba, _checked, compose
    if _checked:
        return
    _checked = True
    try:
        import numba  # noqa: F401
    except Exception:
        return
    _numba = numba
    try:
        compose = _build_compose(numba)
    except Exception:
        compose = None


def _build_compose(numba):
    import numpy as np

    from repro.core.compiled import OP_INTER, OP_LATE_EXIT

    op_inter = np.int64(OP_INTER)
    op_late = np.int64(OP_LATE_EXIT)

    @numba.njit(cache=True)
    def _compose(eids, sp, se, sx, e_src, e_da, e_op, e_ph, e_lat,
                 phase, eff, fin):  # pragma: no cover - needs numba
        n = len(eids)
        v = np.empty(n, np.int64)
        b = np.empty(n, np.int64)
        cp = np.empty(n, np.int64)
        ch = np.empty(n, np.int64)
        cx = np.empty(n, np.float64)
        keep = np.empty(n, np.bool_)
        for k in range(n):
            e = eids[k]
            tv = e_src[e]
            v[k] = tv
            b[k] = e_da[e]
            op = e_op[e]
            p = e_ph[e] if op == op_inter else sp[k]
            h = se[k] + 1
            x = sx[k] + e_lat[e] if op == op_late else 0.0
            cp[k] = p
            ch[k] = h
            cx[k] = x
            pv = phase[tv]
            keep[k] = (not fin[tv]) and (
                pv == 0 or p < pv or (p == pv and h <= eff[tv])
            )
        return v, b, cp, ch, cx, keep

    return _compose
