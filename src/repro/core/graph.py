"""Prediction graph construction (Sections 4.2.3, 4.3.1).

Nodes are ``(plane, side, cluster)``:

* ``plane``: TO_DST (links from the central atlas) or FROM_SRC (links the
  querying client observed on its own traceroutes);
* ``side``: UP/DOWN — the valley-free duplication of Section 4.2.3. Paths
  may transition UP -> DOWN at most once (via a peer edge or a cluster's
  own up->down self edge), making every predicted route valley-free by
  construction.

Edges carry their *forward* semantics. The search backtracks from the
destination, so the engine iterates a reversed adjacency list built here.
Edge phases encode local preference (customer=1 < peer=2 < provider=3,
Section 4.2.4): a route's phase is fixed by the flavour of the first
forward edge leaving each node, and the search finalizes lower phases
first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.relationships import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_SIBLING,
)
from repro.core.versioning import next_graph_version

TO_DST = 0
FROM_SRC = 1
UP = 0
DOWN = 1

#: A node in the prediction graph.
Node = tuple[int, int, int]  # (plane, side, cluster)


class EdgeKind(IntEnum):
    """Forward-edge flavour, which fixes phase and cost composition."""

    INTRA = 0       # same AS (or unknown-intra): inherit phase, add latency
    DOWN_EDGE = 1   # provider -> customer: phase 1 (customer route)
    PEER = 2        # peer crossing UP -> DOWN: phase 2
    UP_EDGE = 3     # customer -> provider: phase 3 (provider route)
    LATE_EXIT = 4   # sibling late-exit crossing: inherit phase, pending hop
    SIBLING = 5     # sibling without late exit: inherit phase, counts a hop
    SELF_DOWN = 6   # up_i -> down_i: inherit (phase 1, since DOWN is phase 1)
    PLANE_CROSS = 7 # FROM_SRC -> TO_DST, zero cost


@dataclass(frozen=True, slots=True)
class Edge:
    """A forward edge ``src -> dst`` with its annotations."""

    src: Node
    dst: Node
    kind: EdgeKind
    latency_ms: float
    loss: float
    src_asn: int
    dst_asn: int


#: Directed-link edge specs, shared by the object graph builder and the
#: compiled CSR builder (repro.core.compiled) so both emit byte-identical
#: edge sequences for a link.
_INTRA_SPECS = ((UP, UP, EdgeKind.INTRA), (DOWN, DOWN, EdgeKind.INTRA))
_UNKNOWN_SPECS = (
    (DOWN, DOWN, EdgeKind.DOWN_EDGE),
    (UP, UP, EdgeKind.UP_EDGE),
)


def link_edge_specs(
    same_as: bool, rel: int | None, is_late_exit: bool
) -> tuple[tuple[int, int, EdgeKind], ...]:
    """``(side_i, side_j, kind)`` triples for a directed link ``ci -> cj``.

    ``same_as`` marks an intra-AS link; otherwise ``rel`` is the inferred
    relationship code (or None when unknown) and ``is_late_exit`` whether
    the AS pair runs late-exit routing. The returned order is part of the
    engine's tie-breaking contract: the search breaks exact cost ties by
    heap insertion order, which follows emission order.
    """
    if same_as:
        return _INTRA_SPECS
    if rel == REL_SIBLING:
        kind = EdgeKind.LATE_EXIT if is_late_exit else EdgeKind.SIBLING
        return ((UP, UP, kind), (DOWN, DOWN, kind))
    if rel == REL_PROVIDER:
        # i is j's provider: forward i -> j descends.
        return ((DOWN, DOWN, EdgeKind.DOWN_EDGE),)
    if rel == REL_CUSTOMER:
        # i is j's customer: forward i -> j climbs.
        return ((UP, UP, EdgeKind.UP_EDGE),)
    if rel == REL_PEER:
        return ((UP, DOWN, EdgeKind.PEER),)
    # Relationship unknown (link seen, AS adjacency never seen in an AS
    # path): allow both monotone directions, no peer.
    return _UNKNOWN_SPECS


@dataclass
class PredictionGraph:
    """Reverse-adjacency prediction graph over one atlas (+ client links)."""

    atlas: Atlas
    from_src_links: dict[tuple[int, int], LinkRecord] | None = None
    #: cluster -> AS entries for client-side clusters absent from the atlas
    extra_cluster_as: dict[int, int] = field(default_factory=dict)
    #: close the TO_DST plane over adjacencies (GRAPH's Section 4.2
    #: undirected construction); False keeps only observed directions
    #: (the Section 4.3.1 directed planes)
    closed: bool = True
    #: incoming edges per node, i.e. the backtracking successor lists
    reverse_adjacency: dict[Node, list[Edge]] = field(default_factory=dict, repr=False)
    #: outgoing edges per node (for pop-time parent re-evaluation)
    forward_adjacency: dict[Node, list[Edge]] = field(default_factory=dict, repr=False)
    #: every edge in emission order — the canonical edge numbering the
    #: compiled CSR lowering (repro.core.compiled) preserves
    edge_log: list[Edge] = field(default_factory=list, repr=False)
    #: process-unique version (see repro.core.versioning); search caches
    #: key on it instead of the GC-recyclable ``id(graph)``
    version: int = field(default_factory=next_graph_version)
    _built: bool = field(default=False, repr=False)

    def build(self) -> "PredictionGraph":
        if self._built:
            return self
        # When ``closed``, the TO_DST plane is *adjacency-closed*: an
        # observed link witnesses the physical adjacency and the up/down
        # construction (not the probe direction) decides which directed
        # edges exist — GRAPH's Section 4.2 graph. Without closure only
        # observed directions exist (Section 4.3.1's directed planes),
        # which suppresses non-existent routes at the price of coverage.
        to_dst_links = (
            self._closed_adjacency(self.atlas.links) if self.closed else self.atlas.links
        )
        self._add_link_plane(TO_DST, to_dst_links)
        clusters_to_dst = {c for (a, b) in self.atlas.links for c in (a, b)}
        self._add_self_edges(TO_DST, clusters_to_dst)
        if self.from_src_links:
            self._add_link_plane(FROM_SRC, self.from_src_links)
            clusters_from_src = {
                c for (a, b) in self.from_src_links for c in (a, b)
            }
            self._add_self_edges(FROM_SRC, clusters_from_src)
            self._add_plane_crossings(clusters_from_src & clusters_to_dst)
        self._built = True
        return self

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def _closed_adjacency(
        links: dict[tuple[int, int], LinkRecord]
    ) -> dict[tuple[int, int], LinkRecord]:
        """Add the reverse of every link (same propagation latency)."""
        closed = dict(links)
        for (i, j), record in links.items():
            closed.setdefault((j, i), LinkRecord(latency_ms=record.latency_ms))
        return closed

    def _emit(self, edge: Edge) -> None:
        self.edge_log.append(edge)
        self.reverse_adjacency.setdefault(edge.dst, []).append(edge)
        self.forward_adjacency.setdefault(edge.src, []).append(edge)

    def _lookup_loss(self, link: tuple[int, int]) -> float:
        return self.atlas.loss_of_link(link)

    def asn_of(self, cluster: int) -> int | None:
        asn = self.atlas.cluster_to_as.get(cluster)
        if asn is None:
            asn = self.extra_cluster_as.get(cluster)
        return asn

    def _add_link_plane(
        self, plane: int, links: dict[tuple[int, int], LinkRecord]
    ) -> None:
        rels = self.atlas.relationship_codes
        late_exit = self.atlas.late_exit_pairs
        for (ci, cj), record in links.items():
            as_i = self.asn_of(ci)
            as_j = self.asn_of(cj)
            if as_i is None or as_j is None:
                continue
            latency = record.latency_ms
            loss = self._lookup_loss((ci, cj))
            same_as = as_i == as_j
            specs = link_edge_specs(
                same_as,
                None if same_as else rels.get((as_i, as_j)),
                not same_as and frozenset((as_i, as_j)) in late_exit,
            )
            for side_i, side_j, kind in specs:
                self._emit(
                    Edge(
                        src=(plane, side_i, ci),
                        dst=(plane, side_j, cj),
                        kind=kind,
                        latency_ms=latency,
                        loss=loss,
                        src_asn=as_i,
                        dst_asn=as_j,
                    )
                )

    def _add_self_edges(self, plane: int, clusters: set[int]) -> None:
        for cluster in clusters:
            asn = self.asn_of(cluster)
            if asn is None:
                continue
            self._emit(
                Edge(
                    src=(plane, UP, cluster),
                    dst=(plane, DOWN, cluster),
                    kind=EdgeKind.SELF_DOWN,
                    latency_ms=0.0,
                    loss=0.0,
                    src_asn=asn,
                    dst_asn=asn,
                )
            )

    def _add_plane_crossings(self, shared_clusters: set[int]) -> None:
        for cluster in shared_clusters:
            asn = self.asn_of(cluster)
            if asn is None:
                continue
            for side in (UP, DOWN):
                self._emit(
                    Edge(
                        src=(FROM_SRC, side, cluster),
                        dst=(TO_DST, side, cluster),
                        kind=EdgeKind.PLANE_CROSS,
                        latency_ms=0.0,
                        loss=0.0,
                        src_asn=asn,
                        dst_asn=asn,
                    )
                )

    # -- queries -------------------------------------------------------------

    @property
    def has_from_src(self) -> bool:
        """True when the graph includes a client FROM_SRC plane."""
        return bool(self.from_src_links)

    def incoming(self, node: Node) -> list[Edge]:
        return self.reverse_adjacency.get(node, [])

    def outgoing(self, node: Node) -> list[Edge]:
        return self.forward_adjacency.get(node, [])

    @property
    def n_edges(self) -> int:
        return sum(len(edges) for edges in self.reverse_adjacency.values())
