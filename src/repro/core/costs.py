"""The GRAPH cost algebra (Section 4.2.1-4.2.2).

A route's cost is the strictly ordered tuple
``[AS hops, pending late-exit hops, cost to exit the current AS]``:

* **AS hops** dominates — GRAPH prefers the shortest AS path among
  equally-preferred routes.
* **pending** counts consecutive late-exit AS transitions whose hop
  contribution has not yet been folded into the AS-path length; it is
  added on the next ordinary AS crossing (Section 4.2.2's third
  component).
* **exit cost** is intra-AS latency accumulated since the last AS
  boundary; it resets to zero on an ordinary AS crossing, which is what
  makes the search early-exit (hot potato) inside each AS.

The ``extend_*`` methods implement the paper's ⊕ operator for each edge
flavour, in the backtracking direction (from the destination outward).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class PathCost:
    """Cost of a partial route in the backtracking search."""

    as_hops: int
    pending: int
    exit_cost_ms: float

    @property
    def effective_hops(self) -> int:
        """AS hops with pending late-exit crossings counted."""
        return self.as_hops + self.pending

    def sort_key(self) -> tuple[int, float]:
        return (self.effective_hops, self.exit_cost_ms)

    # -- ⊕ operator, one method per edge flavour ---------------------------

    def extend_intra(self, latency_ms: float) -> "PathCost":
        """Intra-AS edge: [h, p, c] ⊕ l = [h, p, c + l]."""
        return PathCost(self.as_hops, self.pending, self.exit_cost_ms + latency_ms)

    def extend_inter(self) -> "PathCost":
        """Ordinary AS crossing: hops absorb pending, exit cost resets."""
        return PathCost(self.as_hops + 1 + self.pending, 0, 0.0)

    def extend_late_exit(self, latency_ms: float) -> "PathCost":
        """Late-exit crossing: treated as intra, but one more pending hop."""
        return PathCost(self.as_hops, self.pending + 1, self.exit_cost_ms + latency_ms)

    def __lt__(self, other: "PathCost") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "PathCost") -> bool:
        return self.sort_key() <= other.sort_key()


#: The zero cost (route already at the destination).
ZERO_COST = PathCost(as_hops=0, pending=0, exit_cost_ms=0.0)
