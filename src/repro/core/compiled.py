"""Flat CSR lowering of the prediction graph (the compiled query core).

The object-level :class:`~repro.core.graph.PredictionGraph` is the
reference representation: nodes are ``(plane, side, cluster)`` tuples and
edges are frozen dataclasses, which is convenient to inspect but costly
to traverse — a cold query allocates tens of thousands of objects and
chases a dict per hop. :class:`CompiledGraph` lowers the same graph to a
struct-of-arrays form the predictor's array-native Dijkstra runs over:

* **Node interning.** Every distinct node is assigned a dense ``int`` id
  in first-appearance (emission) order. Per-node arrays ``node_plane``,
  ``node_side``, ``node_cluster`` and ``node_asn`` replace tuple fields;
  ``node_id(plane, side, cluster)`` resolves a tuple to its id via a
  packed-integer dict (``cluster << 2 | plane << 1 | side``).

* **Edge arrays.** Edges keep their global emission order as their ids.
  Parallel arrays hold ``e_src``/``e_dst`` (node ids), ``e_kind``,
  ``e_lat``/``e_loss``, and the precomputed per-edge ASN endpoints
  ``e_src_asn``/``e_dst_asn``. Two derived arrays pre-resolve the cost
  algebra so the search never touches :class:`EdgeKind` at pop time:
  ``e_op`` (0 = intra-like: inherit phase, exit cost accumulates;
  1 = late-exit: one pending hop, exit cost accumulates; 2 = sibling
  crossing: inherit phase, ordinary hop; 3 = inter-AS with a fixed
  phase) and ``e_phase`` (the phase for op 3: customer=1, peer=2,
  provider=3).

* **CSR adjacency.** ``rev_off``/``rev_lst`` index incoming edges per
  node (the backtracking successor lists) and ``fwd_off``/``fwd_lst``
  outgoing edges (for pop-time parent re-evaluation). Both are built by
  a stable counting sort over the emission order, so a node's incoming
  list enumerates exactly the edges — in exactly the order — that the
  object graph's ``reverse_adjacency`` would. That ordering is
  load-bearing: the search breaks exact cost ties by heap insertion
  order, and preserving it makes the compiled engine's output
  bit-for-bit identical to the legacy dict-based search.

Three builders produce a :class:`CompiledGraph`:

* :meth:`CompiledGraph.from_prediction_graph` lowers an already-built
  object graph by replaying its ``edge_log`` — the canonical lowering.
* :meth:`CompiledGraph.from_atlas` compiles straight from the atlas,
  skipping Edge/tuple object creation entirely (the predictor's fast
  path for cold queries). It mirrors ``PredictionGraph.build()`` step
  for step and shares its per-link classifier
  (:func:`~repro.core.graph.link_edge_specs`); the equivalence suite
  asserts the two builders produce identical arrays.
* :meth:`CompiledGraph.from_base_with_from_src` appends a client's
  FROM_SRC plane onto an already-compiled TO_DST base without redoing
  the base compilation. The emission order of ``from_atlas`` puts every
  FROM_SRC section strictly after the TO_DST sections, so copying the
  base arrays and continuing the compilation yields arrays identical to
  a full ``from_atlas`` with the same inputs — the runtime's
  incremental merge path for daily client traceroutes.

For multi-process serving (:mod:`repro.serve`), a compiled graph can be
exported once to a ``multiprocessing.shared_memory`` block
(:meth:`CompiledGraph.to_shared`) and mapped **zero-copy** by any number
of shard workers (:meth:`CompiledGraph.from_shared`): the array fields
become read-only numpy views over the shared buffer, so N workers serve
from one physical copy of the CSR without recompiling or deserializing.
The views are copy-on-write at the semantic level: the first in-place
mutation (a daily delta patch, or a FROM_SRC merge copying the base)
materializes plain Python lists via :meth:`ensure_mutable` and detaches
the mapping — after which the worker's graph behaves exactly like a
locally compiled one. Every consumer of the arrays (the scalar search
loops, the vectorized kernel, batch extraction) indexes lists and numpy
views identically, so serving from a view is bit-for-bit equivalent to
serving from lists.

Every compiled graph carries a process-unique ``version`` (see
:mod:`repro.core.versioning`), refreshed whenever the arrays are
mutated in place; search caches key on it instead of ``id(graph)``.

ASNs and cluster ids must be non-negative: the search encodes "no next
AS yet" as ``-1`` in its state arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.model import Atlas, LinkRecord
from repro.core.graph import (
    DOWN,
    FROM_SRC,
    TO_DST,
    UP,
    EdgeKind,
    PredictionGraph,
    link_edge_specs,
)
from repro.core.versioning import next_graph_version

#: edge-op codes (see module docstring)
OP_INTRA = 0
OP_LATE_EXIT = 1
OP_SIBLING = 2
OP_INTER = 3

_KIND_TO_OP = {
    EdgeKind.INTRA: OP_INTRA,
    EdgeKind.SELF_DOWN: OP_INTRA,
    EdgeKind.PLANE_CROSS: OP_INTRA,
    EdgeKind.LATE_EXIT: OP_LATE_EXIT,
    EdgeKind.SIBLING: OP_SIBLING,
    EdgeKind.DOWN_EDGE: OP_INTER,
    EdgeKind.PEER: OP_INTER,
    EdgeKind.UP_EDGE: OP_INTER,
}

_KIND_TO_PHASE = {
    EdgeKind.DOWN_EDGE: 1,
    EdgeKind.PEER: 2,
    EdgeKind.UP_EDGE: 3,
}


@dataclass
class CompiledGraph:
    """CSR form of a prediction graph; see the module docstring."""

    atlas: Atlas
    extra_cluster_as: dict[int, int]
    has_from_src: bool

    # node arrays (indexed by dense node id)
    node_plane: list[int] = field(default_factory=list, repr=False)
    node_side: list[int] = field(default_factory=list, repr=False)
    node_cluster: list[int] = field(default_factory=list, repr=False)
    node_asn: list[int] = field(default_factory=list, repr=False)

    # edge arrays (indexed by emission-order edge id)
    e_src: list[int] = field(default_factory=list, repr=False)
    e_dst: list[int] = field(default_factory=list, repr=False)
    e_kind: list[int] = field(default_factory=list, repr=False)
    e_lat: list[float] = field(default_factory=list, repr=False)
    e_loss: list[float] = field(default_factory=list, repr=False)
    e_src_asn: list[int] = field(default_factory=list, repr=False)
    e_dst_asn: list[int] = field(default_factory=list, repr=False)
    e_op: list[int] = field(default_factory=list, repr=False)
    e_phase: list[int] = field(default_factory=list, repr=False)

    # CSR offsets + edge-id lists
    rev_off: list[int] = field(default_factory=list, repr=False)
    rev_lst: list[int] = field(default_factory=list, repr=False)
    fwd_off: list[int] = field(default_factory=list, repr=False)
    fwd_lst: list[int] = field(default_factory=list, repr=False)

    #: packed (cluster << 2 | plane << 1 | side) -> dense node id
    _id_of: dict[int, int] = field(default_factory=dict, repr=False)

    #: process-unique version; refreshed on every in-place mutation so
    #: version-keyed search caches can never alias a stale graph
    version: int = field(default_factory=next_graph_version)

    #: lazily-built numpy mirrors of the hot arrays, keyed by version
    #: (see :meth:`np_views`); invalidated automatically on mutation
    _np_views: tuple | None = field(default=None, repr=False)

    #: kernel-facing views for the vectorized frontier search
    #: (:mod:`repro.core.search`): numpy edge mirrors, the op-split
    #: reverse CSR, packed membership keys. Cached as
    #: ``((version, tuple_threshold), KernelViews)`` and rebuilt lazily
    #: after any in-place mutation, like :attr:`_np_views`.
    _kernel_views: tuple | None = field(default=None, repr=False)

    #: the SharedMemory mapping backing the array views when this graph
    #: was built by :meth:`from_shared`; held so the buffer outlives the
    #: views, released by :meth:`ensure_mutable` / :meth:`release_shared`
    _shm: object = field(default=None, repr=False)

    #: lazily-built :class:`~repro.core.search.SearchStatePool` (see
    #: :meth:`search_pool`): spare per-search state-array bundles sized
    #: to this graph, shared by every predictor searching it
    _search_pool: object = field(default=None, repr=False)

    # -- queries -----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_cluster)

    @property
    def n_edges(self) -> int:
        return len(self.e_src)

    def node_id(self, plane: int, side: int, cluster: int) -> int | None:
        """Dense id of ``(plane, side, cluster)``, or None if absent."""
        return self._id_of.get((cluster << 2) | (plane << 1) | side)

    def asn_of(self, cluster: int) -> int | None:
        asn = self.atlas.cluster_to_as.get(cluster)
        if asn is None:
            asn = self.extra_cluster_as.get(cluster)
        return asn

    def arrays(self) -> dict[str, list]:
        """All array fields, for builder-identity assertions in tests."""
        return {
            "node_plane": self.node_plane,
            "node_side": self.node_side,
            "node_cluster": self.node_cluster,
            "node_asn": self.node_asn,
            "e_src": self.e_src,
            "e_dst": self.e_dst,
            "e_kind": self.e_kind,
            "e_lat": self.e_lat,
            "e_loss": self.e_loss,
            "e_src_asn": self.e_src_asn,
            "e_dst_asn": self.e_dst_asn,
            "e_op": self.e_op,
            "e_phase": self.e_phase,
            "rev_off": self.rev_off,
            "rev_lst": self.rev_lst,
            "fwd_off": self.fwd_off,
            "fwd_lst": self.fwd_lst,
        }

    def np_views(self):
        """Numpy mirrors of the extraction-path arrays, cached per version.

        Returns ``(e_dst, e_lat, e_loss, node_cluster, node_asn,
        node_plane)`` as numpy arrays. The cache is keyed on
        :attr:`version`, so in-place patching (which calls
        :meth:`touch`) invalidates it automatically.
        """
        import numpy as np

        cached = self._np_views
        if cached is not None and cached[0] == self.version:
            return cached[1]
        # asarray: list fields copy into fresh arrays as before; shared
        # memory views (already int64/float64) pass through zero-copy
        views = (
            np.asarray(self.e_dst, dtype=np.int64),
            np.asarray(self.e_lat, dtype=np.float64),
            np.asarray(self.e_loss, dtype=np.float64),
            np.asarray(self.node_cluster, dtype=np.int64),
            np.asarray(self.node_asn, dtype=np.int64),
            np.asarray(self.node_plane, dtype=np.int64),
        )
        self._np_views = (self.version, views)
        return views

    def search_pool(self):
        """The per-graph :class:`~repro.core.search.SearchStatePool`.

        One freelist of spare search-state array bundles per graph,
        shared by every predictor over it (searches are single-threaded
        per process, so sharing spare arrays is safe). Sized lazily to
        the current node count; a renumbering day or recompile that
        changes ``n_nodes`` drops stale-sized bundles on next access.
        """
        pool = self._search_pool
        if pool is None:
            from repro.core.search import SearchStatePool

            pool = self._search_pool = SearchStatePool(self.n_nodes)
        else:
            pool.resize(self.n_nodes)
        return pool

    # -- mutation ----------------------------------------------------------

    def touch(self) -> int:
        """Record an in-place mutation: bump the version, drop np views."""
        self.version = next_graph_version()
        self._np_views = None
        self._kernel_views = None
        return self.version

    def ensure_mutable(self) -> None:
        """Materialize numpy-view arrays (shared-memory mappings) into
        plain Python lists, in place.

        A graph mapped by :meth:`from_shared` serves queries straight
        off its read-only views; the first in-place mutation (a delta
        patch, an :meth:`adopt`) must own ordinary lists. ``tolist()``
        yields plain ints/floats, so a materialized graph is
        indistinguishable from a locally compiled one. No-op for
        list-backed graphs.
        """
        if isinstance(self.e_src, list) and isinstance(self.node_plane, list):
            return
        for name, values in self.arrays().items():
            if not isinstance(values, list):
                setattr(self, name, values.tolist())
        self._np_views = None
        self._kernel_views = None
        self.release_shared()

    def release_shared(self) -> None:
        """Close this process's mapping of the shared-memory block (the
        exporting owner still controls the block's lifetime)."""
        shm = self._shm
        if shm is not None:
            self._shm = None
            shm.close()

    def adopt(self, other: "CompiledGraph") -> None:
        """Replace this graph's contents with ``other``'s, in place.

        Used when the runtime must fall back to a full recompile (e.g. a
        monthly refresh): predictors keep their object reference while
        the arrays are swapped underneath, and the version bump retires
        any cached search keyed on the old state.
        """
        self.release_shared()
        self.atlas = other.atlas
        self.extra_cluster_as = other.extra_cluster_as
        self.has_from_src = other.has_from_src
        for name in self.arrays():
            setattr(self, name, getattr(other, name))
        self._id_of = other._id_of
        self.touch()

    # -- builders ----------------------------------------------------------

    @classmethod
    def from_prediction_graph(cls, graph: PredictionGraph) -> "CompiledGraph":
        """Lower a built object graph by replaying its emission log."""
        out = cls(
            atlas=graph.atlas,
            extra_cluster_as=graph.extra_cluster_as,
            has_from_src=graph.has_from_src,
        )
        intern = out._intern
        for edge in graph.edge_log:
            sp, ss, sc = edge.src
            dp, ds, dc = edge.dst
            out._append_edge(
                intern(sp, ss, sc, edge.src_asn),
                intern(dp, ds, dc, edge.dst_asn),
                edge.kind,
                edge.latency_ms,
                edge.loss,
                edge.src_asn,
                edge.dst_asn,
            )
        out._index()
        return out

    @classmethod
    def from_atlas(
        cls,
        atlas: Atlas,
        from_src_links: dict[tuple[int, int], LinkRecord] | None = None,
        extra_cluster_as: dict[int, int] | None = None,
        closed: bool = True,
    ) -> "CompiledGraph":
        """Compile straight from the atlas, without building the object
        graph. Mirrors ``PredictionGraph.build()`` exactly — same link
        iteration order, same per-link edge specs, same self-edge and
        plane-crossing sets — so the arrays match the canonical lowering.
        """
        out = cls(
            atlas=atlas,
            extra_cluster_as=extra_cluster_as or {},
            has_from_src=bool(from_src_links),
        )
        links = atlas.links
        to_dst_links = (
            PredictionGraph._closed_adjacency(links) if closed else links
        )
        out._compile_link_plane(TO_DST, to_dst_links)
        clusters_to_dst = {c for (a, b) in links for c in (a, b)}
        out._compile_self_edges(TO_DST, clusters_to_dst)
        if from_src_links:
            out._compile_link_plane(FROM_SRC, from_src_links)
            clusters_from_src = {
                c for (a, b) in from_src_links for c in (a, b)
            }
            out._compile_self_edges(FROM_SRC, clusters_from_src)
            out._compile_plane_crossings(clusters_from_src & clusters_to_dst)
        out._index()
        return out

    @classmethod
    def from_base_with_from_src(
        cls,
        base: "CompiledGraph",
        from_src_links: dict[tuple[int, int], LinkRecord],
        extra_cluster_as: dict[int, int] | None = None,
    ) -> "CompiledGraph":
        """Merge a client FROM_SRC plane onto a compiled TO_DST base.

        ``base`` must be a directed (``closed=False``) graph compiled
        without a FROM_SRC plane. Because ``from_atlas`` emits every
        FROM_SRC section strictly after the TO_DST sections, copying the
        base arrays and continuing the compilation reproduces
        ``from_atlas(atlas, from_src_links, extra_cluster_as,
        closed=False)`` bit for bit — without re-classifying a single
        atlas link.

        The one case where the composition would diverge is an
        ``extra_cluster_as`` entry that names a cluster the *atlas
        links* reference but ``cluster_to_as`` cannot map (the base
        skipped those links; a full build would keep them). That is
        detected and handed to the full builder.
        """
        extra = extra_cluster_as or {}
        atlas = base.atlas
        if extra and not base.has_from_src:
            c2a = atlas.cluster_to_as
            for link in atlas.links:
                for c in link:
                    if c in extra and c not in c2a:
                        return cls.from_atlas(
                            atlas,
                            from_src_links=from_src_links,
                            extra_cluster_as=extra,
                            closed=False,
                        )
        if base.has_from_src or not from_src_links:
            # No incremental path: the base already diverged (or there is
            # nothing to merge); compile canonically.
            return cls.from_atlas(
                atlas,
                from_src_links=from_src_links,
                extra_cluster_as=extra,
                closed=False,
            )
        out = cls(
            atlas=atlas,
            extra_cluster_as=extra,
            has_from_src=True,
            node_plane=_mutable_copy(base.node_plane),
            node_side=_mutable_copy(base.node_side),
            node_cluster=_mutable_copy(base.node_cluster),
            node_asn=_mutable_copy(base.node_asn),
            e_src=_mutable_copy(base.e_src),
            e_dst=_mutable_copy(base.e_dst),
            e_kind=_mutable_copy(base.e_kind),
            e_lat=_mutable_copy(base.e_lat),
            e_loss=_mutable_copy(base.e_loss),
            e_src_asn=_mutable_copy(base.e_src_asn),
            e_dst_asn=_mutable_copy(base.e_dst_asn),
            e_op=_mutable_copy(base.e_op),
            e_phase=_mutable_copy(base.e_phase),
        )
        out._id_of = dict(base._id_of)
        out._compile_link_plane(FROM_SRC, from_src_links)
        clusters_from_src = {c for (a, b) in from_src_links for c in (a, b)}
        out._compile_self_edges(FROM_SRC, clusters_from_src)
        clusters_to_dst = {c for (a, b) in atlas.links for c in (a, b)}
        out._compile_plane_crossings(clusters_from_src & clusters_to_dst)
        out._index_fast()
        return out

    # -- shared-memory export (multi-process serving) ----------------------

    #: float-valued array fields; every other array field is int64
    _FLOAT_FIELDS = ("e_lat", "e_loss")

    def to_shared(self, name: str | None = None) -> "SharedGraphHandle":
        """Export the arrays into one ``multiprocessing.shared_memory``
        block, so shard workers can map the graph with
        :meth:`from_shared` instead of recompiling it.

        Returns a :class:`SharedGraphHandle`; the caller owns the block
        and must eventually :meth:`~SharedGraphHandle.unlink` it. The
        exported snapshot is decoupled from this graph — later in-place
        patches here do not move the shared bytes (workers converge
        through the delta broadcast instead).
        """
        import numpy as np
        from multiprocessing import shared_memory

        packed: list[tuple[int, object]] = []
        fields: dict[str, tuple[str, int, int]] = {}
        offset = 0
        for fname, values in self.arrays().items():
            dtype = np.float64 if fname in self._FLOAT_FIELDS else np.int64
            arr = np.asarray(values, dtype=dtype)
            fields[fname] = (arr.dtype.str, offset, len(arr))
            packed.append((offset, arr))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, offset), name=name
        )
        for off, arr in packed:
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
            dst[:] = arr
        meta = {
            "name": shm.name,
            "has_from_src": self.has_from_src,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "fields": fields,
        }
        return SharedGraphHandle(shm=shm, meta=meta)

    @classmethod
    def from_shared(
        cls,
        meta: dict,
        atlas: Atlas,
        extra_cluster_as: dict[int, int] | None = None,
    ) -> "CompiledGraph":
        """Map an exported graph zero-copy from shared memory.

        ``atlas`` must be *the same logical atlas* the exporter compiled
        from (same ``links`` dict order — e.g. decoded from the same
        encoded payload), since the arrays embed its emission order.
        Array fields become read-only numpy views over the shared
        buffer; the first mutation goes through :meth:`ensure_mutable`.
        """
        import numpy as np
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=meta["name"])
        out = cls(
            atlas=atlas,
            extra_cluster_as=extra_cluster_as or {},
            has_from_src=meta["has_from_src"],
        )
        for fname, (dtype, offset, count) in meta["fields"].items():
            view = np.ndarray(
                (count,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            view.flags.writeable = False
            setattr(out, fname, view)
        # _id_of rebuilds from the node arrays: interning assigned dense
        # ids in emission order, so enumeration reproduces it exactly.
        out._id_of = {
            (c << 2) | (p << 1) | s: i
            for i, (p, s, c) in enumerate(
                zip(
                    out.node_plane.tolist(),
                    out.node_side.tolist(),
                    out.node_cluster.tolist(),
                )
            )
        }
        out._shm = shm
        return out

    # -- construction internals --------------------------------------------

    def _intern(self, plane: int, side: int, cluster: int, asn: int) -> int:
        key = (cluster << 2) | (plane << 1) | side
        nid = self._id_of.get(key)
        if nid is None:
            nid = len(self.node_cluster)
            self._id_of[key] = nid
            self.node_plane.append(plane)
            self.node_side.append(side)
            self.node_cluster.append(cluster)
            self.node_asn.append(asn)
        return nid

    def _append_edge(
        self,
        src_id: int,
        dst_id: int,
        kind: EdgeKind,
        latency_ms: float,
        loss: float,
        src_asn: int,
        dst_asn: int,
    ) -> None:
        self.e_src.append(src_id)
        self.e_dst.append(dst_id)
        self.e_kind.append(int(kind))
        self.e_lat.append(latency_ms)
        self.e_loss.append(loss)
        self.e_src_asn.append(src_asn)
        self.e_dst_asn.append(dst_asn)
        self.e_op.append(_KIND_TO_OP[kind])
        self.e_phase.append(_KIND_TO_PHASE.get(kind, 0))

    def _compile_link_plane(
        self, plane: int, links: dict[tuple[int, int], LinkRecord]
    ) -> None:
        atlas = self.atlas
        c2a = atlas.cluster_to_as
        extra = self.extra_cluster_as
        rels = atlas.relationship_codes
        late_exit = atlas.late_exit_pairs
        loss_map = atlas.link_loss
        intern = self._intern
        for link, record in links.items():
            ci, cj = link
            as_i = c2a.get(ci)
            if as_i is None:
                as_i = extra.get(ci)
                if as_i is None:
                    continue
            as_j = c2a.get(cj)
            if as_j is None:
                as_j = extra.get(cj)
                if as_j is None:
                    continue
            latency = record.latency_ms
            loss = loss_map.get(link, 0.0)
            same_as = as_i == as_j
            specs = link_edge_specs(
                same_as,
                None if same_as else rels.get((as_i, as_j)),
                not same_as and frozenset((as_i, as_j)) in late_exit,
            )
            for side_i, side_j, kind in specs:
                self._append_edge(
                    intern(plane, side_i, ci, as_i),
                    intern(plane, side_j, cj, as_j),
                    kind,
                    latency,
                    loss,
                    as_i,
                    as_j,
                )

    def _compile_self_edges(self, plane: int, clusters: set[int]) -> None:
        for cluster in clusters:
            asn = self.asn_of(cluster)
            if asn is None:
                continue
            self._append_edge(
                self._intern(plane, UP, cluster, asn),
                self._intern(plane, DOWN, cluster, asn),
                EdgeKind.SELF_DOWN,
                0.0,
                0.0,
                asn,
                asn,
            )

    def _compile_plane_crossings(self, shared_clusters: set[int]) -> None:
        for cluster in shared_clusters:
            asn = self.asn_of(cluster)
            if asn is None:
                continue
            for side in (UP, DOWN):
                self._append_edge(
                    self._intern(FROM_SRC, side, cluster, asn),
                    self._intern(TO_DST, side, cluster, asn),
                    EdgeKind.PLANE_CROSS,
                    0.0,
                    0.0,
                    asn,
                    asn,
                )

    def _index(self) -> None:
        """Build both CSR indexes with a stable counting sort, so each
        node's edge list preserves global emission order."""
        n = len(self.node_cluster)
        self.rev_off, self.rev_lst = _csr(n, self.e_dst)
        self.fwd_off, self.fwd_lst = _csr(n, self.e_src)

    def _index_fast(self) -> None:
        """Numpy-vectorized :meth:`_index` (bit-identical output via
        :func:`csr_numpy`). Used on hot incremental paths (runtime
        merges and patches); the pure-Python ``_csr`` stays the spec."""
        import numpy as np

        n = len(self.node_cluster)
        self.rev_off, self.rev_lst = csr_numpy(
            n, np.array(self.e_dst, dtype=np.int64)
        )
        self.fwd_off, self.fwd_lst = csr_numpy(
            n, np.array(self.e_src, dtype=np.int64)
        )


@dataclass
class SharedGraphHandle:
    """Owner-side handle for a graph exported to shared memory.

    ``meta`` is the (picklable) mapping recipe workers feed to
    :meth:`CompiledGraph.from_shared`. The exporter keeps the handle
    alive for the serving lifetime, then :meth:`unlink`\\ s the block.
    """

    shm: object
    meta: dict

    @property
    def nbytes(self) -> int:
        return self.shm.size

    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        """Destroy the shared block (call once, from the owner, after
        every worker has detached or exited)."""
        try:
            self.shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass


def _mutable_copy(values) -> list:
    """A plain-list copy of an array field (list or numpy view)."""
    return values.tolist() if hasattr(values, "tolist") else values.copy()


def _csr(n_nodes: int, bucket_of: list[int]) -> tuple[list[int], list[int]]:
    counts = [0] * (n_nodes + 1)
    for b in bucket_of:
        counts[b + 1] += 1
    for i in range(1, n_nodes + 1):
        counts[i] += counts[i - 1]
    pos = counts[:-1]
    lst = [0] * len(bucket_of)
    for ei, b in enumerate(bucket_of):
        lst[pos[b]] = ei
        pos[b] += 1
    return counts, lst


def csr_numpy(n_nodes: int, bucket_of) -> tuple[list[int], list[int]]:
    """Vectorized equivalent of :func:`_csr` (the spec): a stable
    argsort groups edge ids per bucket in emission order, exactly like
    the counting sort. ``bucket_of`` must be an int64 numpy array."""
    import numpy as np

    counts = np.bincount(bucket_of, minlength=n_nodes)
    off = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
    lst = np.argsort(bucket_of, kind="stable")
    return off.tolist(), lst.tolist()
