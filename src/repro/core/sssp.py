"""Shared scalar Dijkstra primitives — the repo's tie-breaking contract.

Three subsystems run hand-rolled scalar Dijkstra loops: the forwarding
engine's intra-AS shortest paths (`repro.routing.forwarding`), the atlas
builder's late-exit inference (`repro.atlas.builder`), and the legacy
predictor search (`repro.core.predictor`, the executable specification
of the prediction engines). They used to duplicate the same pop
discipline; this module is the single place those semantics live:

* **Lazy deletion.** Entries are tuples ending in the node; a node may
  be pushed once per improvement and is *settled at its first pop* —
  later (stale) entries are skipped, never removed eagerly.
* **Lexicographic tie-breaking.** The heap orders entries by plain
  tuple comparison, so equal-priority entries resolve by the remaining
  tuple fields. :func:`latency_sssp` pushes ``(distance, node)`` —
  exact-distance ties break toward the smaller node id. The predictor
  pushes ``(phase, hops, cost, counter, node)`` — exact-cost ties break
  by push order (the emission-order contract the compiled engines
  preserve).
"""

from __future__ import annotations

import heapq

_INF = float("inf")


def lazy_heap_loop(heap, is_settled, settle) -> None:
    """Run the shared lazy-deletion pop loop until the heap drains.

    ``heap`` is a list of comparable tuples whose *last* element is the
    node. ``is_settled(node)`` gates stale entries; ``settle(entry)``
    finalizes the node and may push new entries onto ``heap``.
    """
    pop = heapq.heappop
    while heap:
        entry = pop(heap)
        if is_settled(entry[-1]):
            continue
        settle(entry)


def latency_sssp(source, neighbors):
    """Single-source latency-shortest paths over a callable adjacency.

    ``neighbors(node)`` yields ``(neighbor, latency_ms)`` pairs; the
    iteration order decides nothing (parents update only on strict
    improvement, and exact-distance pop ties break by node id via the
    ``(distance, node)`` heap tuples). Returns ``(dist, parent)`` dicts;
    unreachable nodes are absent from both.
    """
    dist: dict = {source: 0.0}
    parent: dict = {}
    settled: set = set()
    heap: list[tuple[float, object]] = [(0.0, source)]

    def settle(entry) -> None:
        d, node = entry
        settled.add(node)
        for neighbor, latency in neighbors(node):
            nd = d + latency
            if nd < dist.get(neighbor, _INF):
                dist[neighbor] = nd
                parent[neighbor] = node
                heapq.heappush(heap, (nd, neighbor))

    lazy_heap_loop(heap, settled.__contains__, settle)
    return dist, parent
