"""TCP performance models.

Two models the paper's CDN case study (Section 7.1) relies on:

* the **PFTK** steady-state throughput model [37] — used to rank replicas
  for large transfers from (RTT, loss) estimates;
* a **small-transfer latency model** after Cardwell et al. [8] — slow
  start dominates short transfers, so their completion time is governed by
  RTT, not bandwidth.
"""

from __future__ import annotations

import math

DEFAULT_MSS_BYTES = 1460
INITIAL_WINDOW_SEGMENTS = 2
#: Retransmission timeout as a multiple of RTT (PFTK's T0; RFC-style floor).
RTO_RTT_MULTIPLE = 4.0
MIN_RTO_SECONDS = 0.2
#: Delivery rate ceiling so p=0 doesn't mean infinite bandwidth (bytes/s).
ACCESS_RATE_BPS = 10e6 / 8  # 10 Mbit/s access links


def pftk_throughput_bps(
    rtt_seconds: float,
    loss_rate: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
    delayed_ack_b: int = 1,
) -> float:
    """PFTK steady-state TCP throughput in *bytes per second*.

    ``B = MSS / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2))``
    with the loss-free case capped at the access rate.
    """
    if rtt_seconds <= 0:
        raise ValueError("rtt must be positive")
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError("loss_rate must be in [0, 1)")
    if loss_rate == 0.0:
        return ACCESS_RATE_BPS
    p = loss_rate
    b = delayed_ack_b
    t0 = max(MIN_RTO_SECONDS, RTO_RTT_MULTIPLE * rtt_seconds)
    denom = rtt_seconds * math.sqrt(2 * b * p / 3) + t0 * min(
        1.0, 3 * math.sqrt(3 * b * p / 8)
    ) * p * (1 + 32 * p * p)
    return min(ACCESS_RATE_BPS, mss_bytes / denom)


def slow_start_time_seconds(
    size_bytes: int,
    rtt_seconds: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """Completion time of a transfer that stays in slow start (no loss).

    The sender doubles its window each RTT starting from
    ``INITIAL_WINDOW_SEGMENTS``; we count the rounds needed to cover the
    file, plus connection setup (one RTT).
    """
    segments = max(1, math.ceil(size_bytes / mss_bytes))
    window = INITIAL_WINDOW_SEGMENTS
    rounds = 0
    sent = 0
    while sent < segments:
        sent += window
        window *= 2
        rounds += 1
    handshake = 1.0
    return (handshake + rounds) * rtt_seconds + size_bytes / ACCESS_RATE_BPS


def download_time_seconds(
    size_bytes: int,
    rtt_seconds: float,
    loss_rate: float,
    mss_bytes: int = DEFAULT_MSS_BYTES,
) -> float:
    """End-to-end transfer-time model used by the CDN experiment.

    Short transfers are latency-bound (slow start); longer transfers run
    at PFTK steady-state after an abbreviated slow-start phase. Loss both
    caps the steady-state rate and, for short transfers, adds expected
    retransmission stalls.
    """
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    base = slow_start_time_seconds(size_bytes, rtt_seconds, mss_bytes)
    if loss_rate <= 0.0:
        return base
    rate = pftk_throughput_bps(rtt_seconds, loss_rate, mss_bytes)
    steady = 1.5 * rtt_seconds + size_bytes / rate
    # Expected timeout stalls for the segments sent during slow start.
    segments = max(1, math.ceil(size_bytes / mss_bytes))
    t0 = max(MIN_RTO_SECONDS, RTO_RTT_MULTIPLE * rtt_seconds)
    stall_penalty = min(segments, 40) * loss_rate * t0
    if size_bytes <= 64 * mss_bytes:
        return base + stall_penalty
    return max(steady, base)
