"""End-to-end loss-rate estimation (Section 6.3.2, Figure 8).

Loss rates compose multiplicatively: a path's delivery probability is the
product of its links' delivery probabilities. iNano stores loss only for
links measured as lossy; absent links are assumed lossless.
"""

from __future__ import annotations

from repro.core.predictor import INanoPredictor, PredictedPath


def compose_loss(losses: list[float]) -> float:
    """Combine per-link loss rates into a path loss rate."""
    success = 1.0
    for loss in losses:
        success *= 1.0 - min(1.0, max(0.0, loss))
    return 1.0 - success


def predict_path_loss(
    predictor: INanoPredictor, src_prefix_index: int, dst_prefix_index: int
) -> float | None:
    """One-way (forward) loss estimate between two prefixes."""
    forward = predictor.predict_or_none(src_prefix_index, dst_prefix_index)
    if forward is None:
        return None
    return forward.loss


def predict_round_trip_loss(
    predictor: INanoPredictor, src_prefix_index: int, dst_prefix_index: int
) -> float | None:
    """Round-trip loss estimate (what an ICMP probe campaign observes)."""
    forward = predictor.predict_or_none(src_prefix_index, dst_prefix_index)
    reverse = predictor.predict_or_none(dst_prefix_index, src_prefix_index)
    if forward is None or reverse is None:
        return None
    return compose_loss([forward.loss, reverse.loss])


def round_trip_loss_of(forward: PredictedPath, reverse: PredictedPath) -> float:
    return compose_loss([forward.loss, reverse.loss])
