"""Process-wide monotonic version counter for prediction graphs.

Search results are cached per destination, keyed by the graph they were
computed over. Keying by ``id(graph)`` is unsound: CPython reuses object
addresses after garbage collection, so a predictor that rebuilds its
graph can alias a dead graph's cache entries and serve stale routes.

Instead, every built :class:`~repro.core.graph.PredictionGraph` /
:class:`~repro.core.compiled.CompiledGraph` draws a version from this
counter, and every in-place mutation (the runtime's delta patching)
draws a fresh one. Versions are never reused within a process, so a
``(version, destination, providers)`` cache key can never alias.
"""

from __future__ import annotations

import itertools

_GRAPH_VERSIONS = itertools.count(1)


def next_graph_version() -> int:
    """A process-unique, monotonically increasing graph version."""
    return next(_GRAPH_VERSIONS)
