"""Mean Opinion Score estimation for VoIP (Section 7.2).

Implements the ITU-T E-model simplification of Cole & Rosenbluth: the
R-factor starts from 94.2 and is degraded by a delay impairment (one-way
mouth-to-ear delay) and an equipment/loss impairment, then mapped to the
1..4.5 MOS scale. The paper's Skype case study picks relays by loss first
and latency second; MOS gives a single combined quality number.
"""

from __future__ import annotations

import math

R_MAX = 94.2
#: Jitter-buffer and codec processing added to network delay (ms).
CODEC_DELAY_MS = 25.0


def r_factor(one_way_delay_ms: float, loss_rate: float) -> float:
    """E-model R factor from one-way delay (ms) and loss rate in [0, 1]."""
    if one_way_delay_ms < 0:
        raise ValueError("delay must be non-negative")
    if not 0.0 <= loss_rate <= 1.0:
        raise ValueError("loss_rate must be in [0, 1]")
    d = one_way_delay_ms + CODEC_DELAY_MS
    delay_impairment = 0.024 * d + 0.11 * (d - 177.3) * (1.0 if d > 177.3 else 0.0)
    loss_impairment = 11.0 + 40.0 * math.log(1.0 + 10.0 * loss_rate)
    return R_MAX - delay_impairment - loss_impairment


def mos_from_r(r: float) -> float:
    """Map an R factor to MOS (ITU-T G.107 Annex B)."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    return 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6


def mos_score(rtt_ms: float, loss_rate: float) -> float:
    """MOS of a call over a path with the given RTT and loss.

    One-way delay is approximated as RTT/2 (the E-model wants
    mouth-to-ear delay).
    """
    return mos_from_r(r_factor(rtt_ms / 2.0, loss_rate))
