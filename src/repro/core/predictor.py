"""The iNano route predictor (Section 4 in full).

One backtracking Dijkstra per destination computes best routes from *every*
node to that destination, so batched queries against a common destination
are nearly free (the per-destination search is cached).

Graph planes follow the paper's ablation structure:

* with ``use_from_src`` off (plain GRAPH), the search runs over the
  Section 4.2 graph — observed adjacencies closed in both directions with
  relationship-imposed edge directions;
* with ``use_from_src`` on, the primary search uses the *directed*
  TO_DST plane plus the client's directed FROM_SRC plane (Section 4.3.1),
  which suppresses non-existent routes; if that search cannot reach the
  source, the engine falls back to the closed graph so arbitrary-pair
  queries keep their coverage.

The search state per node holds the GRAPH cost tuple plus two pieces of
path context the corrective checks need:

* ``next_asn`` — the first AS on the node's forward path that differs from
  the node's own AS (None while still inside the destination AS). The
  3-tuple check validates ``(AS(v), AS(u), next_asn(u))`` on every AS
  crossing, and the provider check fires exactly when ``next_asn(u)`` is
  None (the edge enters the destination prefix's origin AS).
* ``phase`` — local-preference tier (customer=1 < peer=2 < provider=3),
  dominating the cost comparison, which realizes Section 4.2.4's phased
  computation in a single pass.

AS preferences (Section 4.3.3) tie-break candidates with equal
(phase, AS hops), overriding the intra-AS exit-cost comparison. Because
plain Dijkstra would finalize a node before an equally-short-but-preferred
parent pops, every node re-evaluates its finalized out-neighbors at pop
time and keeps the preferred parent.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.tuples import tuple_check
from repro.core.costs import ZERO_COST, PathCost
from repro.core.graph import (
    DOWN,
    FROM_SRC,
    TO_DST,
    UP,
    Edge,
    EdgeKind,
    Node,
    PredictionGraph,
)
from repro.errors import NoPredictedRouteError, UnknownEndpointError

_SEARCH_CACHE_MAX = 256


@dataclass(frozen=True)
class PredictorConfig:
    """Feature flags matching Figure 5's ablation ladder."""

    use_from_src: bool = True       # Section 4.3.1 (asymmetry)
    use_three_tuples: bool = True   # Section 4.3.2 (export policies)
    use_preferences: bool = True    # Section 4.3.3 (local preferences)
    use_providers: bool = True      # Section 4.3.4 (traffic engineering)
    tuple_degree_threshold: int = 5

    @classmethod
    def graph_baseline(cls) -> "PredictorConfig":
        """Plain GRAPH (Section 4.2): no corrective components."""
        return cls(
            use_from_src=False,
            use_three_tuples=False,
            use_preferences=False,
            use_providers=False,
        )

    @classmethod
    def inano(cls) -> "PredictorConfig":
        """Full iNano: all components on."""
        return cls()

    def ablation_name(self) -> str:
        flags = (
            self.use_from_src,
            self.use_three_tuples,
            self.use_preferences,
            self.use_providers,
        )
        if not any(flags):
            return "GRAPH"
        if all(flags):
            return "iNano"
        parts = []
        if self.use_from_src:
            parts.append("asym")
        if self.use_three_tuples:
            parts.append("tuples")
        if self.use_preferences:
            parts.append("prefs")
        if self.use_providers:
            parts.append("providers")
        return "GRAPH+" + "+".join(parts)


@dataclass(frozen=True, slots=True)
class PredictedPath:
    """A predicted one-way route with composed annotations."""

    clusters: tuple[int, ...]
    as_path: tuple[int, ...]
    latency_ms: float
    loss: float
    as_hops: int
    used_from_src: bool

    @property
    def n_cluster_hops(self) -> int:
        return max(0, len(self.clusters) - 1)


@dataclass
class _NodeState:
    phase: int
    cost: PathCost
    parent_edge: Edge | None
    next_asn: int | None

    def key(self) -> tuple[int, int]:
        return (self.phase, self.cost.effective_hops)


class INanoPredictor:
    """Predicts PoP-level routes between arbitrary prefixes from an atlas."""

    def __init__(
        self,
        atlas: Atlas,
        config: PredictorConfig | None = None,
        from_src_links: dict[tuple[int, int], LinkRecord] | None = None,
        from_src_prefixes: set[int] | None = None,
        client_cluster_as: dict[int, int] | None = None,
    ) -> None:
        self.atlas = atlas
        self.config = config or PredictorConfig.inano()
        extra = dict(client_cluster_as or {})
        if self.config.use_from_src:
            self.graph = PredictionGraph(
                atlas=atlas,
                from_src_links=from_src_links,
                extra_cluster_as=extra,
                closed=False,
            ).build()
            self.fallback_graph: PredictionGraph | None = PredictionGraph(
                atlas=atlas, extra_cluster_as=extra, closed=True
            ).build()
        else:
            self.graph = PredictionGraph(
                atlas=atlas, extra_cluster_as=extra, closed=True
            ).build()
            self.fallback_graph = None
        #: prefixes whose queries may start in the FROM_SRC plane (the
        #: client's own); None means any source may use it.
        self.from_src_prefixes = from_src_prefixes
        self._search_cache: dict[tuple, dict[Node, _NodeState]] = {}

    # -- public API ----------------------------------------------------------

    def predict(self, src_prefix_index: int, dst_prefix_index: int) -> PredictedPath:
        """Predict the forward route ``src -> dst`` between two prefixes.

        Raises :class:`UnknownEndpointError` if either prefix is not in the
        atlas, :class:`NoPredictedRouteError` if the search fails.
        """
        src_cluster = self.atlas.cluster_of_prefix(src_prefix_index)
        dst_cluster = self.atlas.cluster_of_prefix(dst_prefix_index)
        if src_cluster is None:
            raise UnknownEndpointError(src_prefix_index)
        if dst_cluster is None:
            raise UnknownEndpointError(dst_prefix_index)

        graphs: list[PredictionGraph] = [self.graph]
        if self.fallback_graph is not None:
            graphs.append(self.fallback_graph)
        for graph in graphs:
            states = self._search(graph, dst_cluster, dst_prefix_index)
            for plane, side in self._target_priority(graph, src_prefix_index):
                node = (plane, side, src_cluster)
                if node in states:
                    return self._extract(node, states)
        raise NoPredictedRouteError(src_prefix_index, dst_prefix_index)

    def predict_or_none(
        self, src_prefix_index: int, dst_prefix_index: int
    ) -> PredictedPath | None:
        try:
            return self.predict(src_prefix_index, dst_prefix_index)
        except (UnknownEndpointError, NoPredictedRouteError):
            return None

    def predict_batch(
        self, pairs: list[tuple[int, int]]
    ) -> list[PredictedPath | None]:
        """Batched queries (the library API serves these locally)."""
        return [self.predict_or_none(s, d) for s, d in pairs]

    # -- search ---------------------------------------------------------------

    def _target_priority(
        self, graph: PredictionGraph, src_prefix_index: int
    ) -> list[tuple[int, int]]:
        """Planes/sides to try for the source node, in order (Section 4.3.1)."""
        targets: list[tuple[int, int]] = []
        if graph.from_src_links and (
            self.from_src_prefixes is None
            or src_prefix_index in self.from_src_prefixes
        ):
            targets.append((FROM_SRC, UP))
        targets.append((TO_DST, UP))
        targets.append((TO_DST, DOWN))
        return targets

    def _provider_gate(self, dst_prefix_index: int) -> frozenset[int] | None:
        if not self.config.use_providers:
            return None
        return self.atlas.providers_for_prefix(dst_prefix_index)

    def _candidate(
        self,
        edge: Edge,
        su: _NodeState,
        providers: frozenset[int] | None,
    ) -> _NodeState | None:
        """State for reaching ``edge.src`` via ``edge`` then ``su``, or None."""
        cfg = self.config
        crossing = edge.src_asn != edge.dst_asn
        if crossing:
            if cfg.use_three_tuples and su.next_asn is not None:
                if not tuple_check(
                    self.atlas.three_tuples,
                    self.atlas.as_degrees,
                    edge.src_asn,
                    edge.dst_asn,
                    su.next_asn,
                    cfg.tuple_degree_threshold,
                ):
                    return None
            if providers is not None and su.next_asn is None:
                if edge.src_asn not in providers:
                    return None
        phase, cost = self._compose(edge, su)
        if phase is None:
            return None
        next_asn = edge.dst_asn if crossing else su.next_asn
        return _NodeState(phase=phase, cost=cost, parent_edge=edge, next_asn=next_asn)

    def _search(
        self, graph: PredictionGraph, dst_cluster: int, dst_prefix_index: int
    ) -> dict[Node, _NodeState]:
        providers = self._provider_gate(dst_prefix_index)
        cache_key = (id(graph), dst_cluster, providers)
        cached = self._search_cache.get(cache_key)
        if cached is not None:
            return cached

        prefers = self.atlas.prefers
        best: dict[Node, _NodeState] = {}
        finalized: set[Node] = set()
        counter = itertools.count()
        heap: list[tuple[int, int, float, int, Node]] = []

        root: Node = (TO_DST, DOWN, dst_cluster)
        best[root] = _NodeState(
            phase=1, cost=ZERO_COST, parent_edge=None, next_asn=None
        )
        heapq.heappush(heap, (1, 0, 0.0, next(counter), root))

        while heap:
            _, _, _, _, u = heapq.heappop(heap)
            if u in finalized:
                continue
            if u != root:
                # Pop-time re-evaluation: among *finalized* out-neighbors,
                # keep the best parent under the full comparator (this is
                # where equal-length AS preferences actually bite).
                for edge in graph.outgoing(u):
                    if edge.dst not in finalized:
                        continue
                    candidate = self._candidate(edge, best[edge.dst], providers)
                    if candidate is not None and self._improves(
                        candidate, best.get(u), edge.src_asn, prefers
                    ):
                        best[u] = candidate
            finalized.add(u)
            su = best[u]
            for edge in graph.incoming(u):
                v = edge.src
                if v in finalized:
                    continue
                candidate = self._candidate(edge, su, providers)
                if candidate is None:
                    continue
                if self._improves(candidate, best.get(v), edge.src_asn, prefers):
                    best[v] = candidate
                    cost = candidate.cost
                    heapq.heappush(
                        heap,
                        (
                            candidate.phase,
                            cost.effective_hops,
                            cost.exit_cost_ms,
                            next(counter),
                            v,
                        ),
                    )

        if len(self._search_cache) >= _SEARCH_CACHE_MAX:
            self._search_cache.pop(next(iter(self._search_cache)))
        self._search_cache[cache_key] = best
        return best

    @staticmethod
    def _compose(edge: Edge, su: _NodeState) -> tuple[int | None, PathCost | None]:
        """Phase and cost of reaching ``edge.src`` via ``edge`` then ``su``."""
        kind = edge.kind
        if kind is EdgeKind.INTRA:
            return su.phase, su.cost.extend_intra(edge.latency_ms)
        if kind in (EdgeKind.SELF_DOWN, EdgeKind.PLANE_CROSS):
            return su.phase, su.cost.extend_intra(0.0)
        if kind is EdgeKind.LATE_EXIT:
            return su.phase, su.cost.extend_late_exit(edge.latency_ms)
        if kind is EdgeKind.SIBLING:
            return su.phase, su.cost.extend_inter()
        if kind is EdgeKind.DOWN_EDGE:
            return 1, su.cost.extend_inter()
        if kind is EdgeKind.PEER:
            return 2, su.cost.extend_inter()
        if kind is EdgeKind.UP_EDGE:
            return 3, su.cost.extend_inter()
        return None, None

    def _improves(
        self,
        candidate: _NodeState,
        incumbent: _NodeState | None,
        chooser_asn: int,
        prefers,
    ) -> bool:
        if incumbent is None:
            return True
        ck, ik = candidate.key(), incumbent.key()
        if ck != ik:
            return ck < ik
        if self.config.use_preferences:
            cand_next = self._choice_asn(candidate, chooser_asn)
            inc_next = self._choice_asn(incumbent, chooser_asn)
            if cand_next is not None and inc_next is not None and cand_next != inc_next:
                if prefers(chooser_asn, cand_next, inc_next):
                    return True
                if prefers(chooser_asn, inc_next, cand_next):
                    return False
        return candidate.cost.exit_cost_ms < incumbent.cost.exit_cost_ms

    @staticmethod
    def _choice_asn(state: _NodeState, chooser_asn: int) -> int | None:
        """The next-hop AS this state routes through, from the chooser's view."""
        edge = state.parent_edge
        if edge is None:
            return None
        if edge.dst_asn != chooser_asn:
            return edge.dst_asn
        return state.next_asn

    # -- extraction -------------------------------------------------------------

    def _extract(self, start: Node, states: dict[Node, _NodeState]) -> PredictedPath:
        clusters: list[int] = []
        as_path: list[int] = []
        latency = 0.0
        success = 1.0
        used_from_src = start[0] == FROM_SRC

        node = start
        while True:
            cluster = node[2]
            if not clusters or clusters[-1] != cluster:
                clusters.append(cluster)
            asn = self.graph.asn_of(cluster)
            if asn is not None and (not as_path or as_path[-1] != asn):
                as_path.append(asn)
            state = states[node]
            edge = state.parent_edge
            if edge is None:
                break
            latency += edge.latency_ms
            success *= 1.0 - edge.loss
            node = edge.dst

        final_state = states[start]
        return PredictedPath(
            clusters=tuple(clusters),
            as_path=tuple(as_path),
            latency_ms=latency,
            loss=1.0 - success,
            as_hops=final_state.cost.effective_hops,
            used_from_src=used_from_src,
        )
