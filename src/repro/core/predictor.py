"""The iNano route predictor (Section 4 in full).

One backtracking Dijkstra per destination computes best routes from *every*
node to that destination, so batched queries against a common destination
are nearly free (the per-destination search is cached, LRU).

Graph planes follow the paper's ablation structure:

* with ``use_from_src`` off (plain GRAPH), the search runs over the
  Section 4.2 graph — observed adjacencies closed in both directions with
  relationship-imposed edge directions;
* with ``use_from_src`` on, the primary search uses the *directed*
  TO_DST plane plus the client's directed FROM_SRC plane (Section 4.3.1),
  which suppresses non-existent routes; if that search cannot reach the
  source, the engine falls back to the closed graph (built lazily, on
  first need) so arbitrary-pair queries keep their coverage.

The search state per node holds the GRAPH cost tuple plus two pieces of
path context the corrective checks need:

* ``next_asn`` — the first AS on the node's forward path that differs from
  the node's own AS (None while still inside the destination AS). The
  3-tuple check validates ``(AS(v), AS(u), next_asn(u))`` on every AS
  crossing, and the provider check fires exactly when ``next_asn(u)`` is
  None (the edge enters the destination prefix's origin AS).
* ``phase`` — local-preference tier (customer=1 < peer=2 < provider=3),
  dominating the cost comparison, which realizes Section 4.2.4's phased
  computation in a single pass.

AS preferences (Section 4.3.3) tie-break candidates with equal
(phase, AS hops), overriding the intra-AS exit-cost comparison. Because
plain Dijkstra would finalize a node before an equally-short-but-preferred
parent pops, every node re-evaluates its finalized out-neighbors at pop
time and keeps the preferred parent.

Two interchangeable engines implement the search:

* ``engine="compiled"`` (the default) runs over the flat CSR arrays of
  :class:`repro.core.compiled.CompiledGraph`: dense int node ids,
  preallocated per-node state arrays (phase / effective hops / exit cost
  / parent edge / next ASN, with ``-1`` as the "no next AS" sentinel),
  and integer heap entries. Only the *effective* hop count is tracked —
  the (as_hops, pending) split of :class:`~repro.core.costs.PathCost`
  is a homomorphism onto it under every ⊕ flavour, so nothing else of
  the cost tuple is observable. Cold searches run through the
  vectorized phase-major bucket-queue kernel (:mod:`repro.core.search`)
  by default; ``kernel="scalar"`` pins the scalar heap loop
  (:meth:`INanoPredictor._search_compiled`), which stays as the
  kernel's executable spec.
* ``engine="legacy"`` is the original dict-of-dataclass search, kept as
  the executable specification; the equivalence suite asserts both
  engines return identical :class:`PredictedPath`s under every ablation.

Both engines share graph construction semantics (and therefore the
emission-order tie-breaking contract), the per-destination LRU search
cache, and the destination-grouped :meth:`INanoPredictor.predict_batch`.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.search import run_kernel
from repro.core.sssp import lazy_heap_loop

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.tuples import tuple_check
from repro.core.compiled import (
    OP_INTRA,
    OP_LATE_EXIT,
    OP_SIBLING,
    CompiledGraph,
)
from repro.core.costs import ZERO_COST, PathCost
from repro.core.graph import (
    DOWN,
    FROM_SRC,
    TO_DST,
    UP,
    Edge,
    EdgeKind,
    Node,
    PredictionGraph,
)
from repro.errors import NoPredictedRouteError, UnknownEndpointError

_SEARCH_CACHE_MAX = 256


@dataclass(frozen=True)
class PredictorConfig:
    """Feature flags matching Figure 5's ablation ladder."""

    use_from_src: bool = True       # Section 4.3.1 (asymmetry)
    use_three_tuples: bool = True   # Section 4.3.2 (export policies)
    use_preferences: bool = True    # Section 4.3.3 (local preferences)
    use_providers: bool = True      # Section 4.3.4 (traffic engineering)
    tuple_degree_threshold: int = 5

    @classmethod
    def graph_baseline(cls) -> "PredictorConfig":
        """Plain GRAPH (Section 4.2): no corrective components."""
        return cls(
            use_from_src=False,
            use_three_tuples=False,
            use_preferences=False,
            use_providers=False,
        )

    @classmethod
    def inano(cls) -> "PredictorConfig":
        """Full iNano: all components on."""
        return cls()

    def ablation_name(self) -> str:
        flags = (
            self.use_from_src,
            self.use_three_tuples,
            self.use_preferences,
            self.use_providers,
        )
        if not any(flags):
            return "GRAPH"
        if all(flags):
            return "iNano"
        parts = []
        if self.use_from_src:
            parts.append("asym")
        if self.use_three_tuples:
            parts.append("tuples")
        if self.use_preferences:
            parts.append("prefs")
        if self.use_providers:
            parts.append("providers")
        return "GRAPH+" + "+".join(parts)


@dataclass(frozen=True, slots=True)
class PredictedPath:
    """A predicted one-way route with composed annotations."""

    clusters: tuple[int, ...]
    as_path: tuple[int, ...]
    latency_ms: float
    loss: float
    as_hops: int
    used_from_src: bool

    @property
    def n_cluster_hops(self) -> int:
        return max(0, len(self.clusters) - 1)


@dataclass
class _NodeState:
    phase: int
    cost: PathCost
    parent_edge: Edge | None
    next_asn: int | None

    def key(self) -> tuple[int, int]:
        return (self.phase, self.cost.effective_hops)


#: per-search cap on memoized extracted paths (bounds worst-case memory
#: at _SEARCH_CACHE_MAX * _PATH_MEMO_MAX small objects)
_PATH_MEMO_MAX = 4096

#: minimum number of uncached start nodes in a destination group before
#: predict_batch switches from the scalar parent-chain walk to the
#: vectorized extraction (numpy per-hop overhead beats the scalar walk
#: only once enough paths share it)
_BATCH_EXTRACT_MIN = 8


@dataclass
class _CompiledStates:
    """Per-destination search result of the compiled engine.

    ``root_id`` is None when the destination node is absent from the
    graph entirely (then only the trivial src==dst query can answer).
    The five state fields are flat numpy arrays (int64, except the
    float64 exit cost) sized to the graph; ``phase[v] == 0`` marks an
    unreached node. ``paths`` memoizes extracted
    :class:`PredictedPath`s by start node id — extraction is a pure
    function of the finished search, so repeated queries against a
    cached destination skip the parent-chain walk entirely.

    ``journal`` is the bucket engine's replay journal when recording
    was on (pool-managed predictors), enabling bounded in-place repair
    after value-only delta days. ``pool`` points at the
    :class:`~repro.core.search.SearchStatePool` the arrays came from so
    eviction/repair can recycle them; recycled arrays may be handed to
    the next search, so holders of a states object must drop it once
    its cache entry is gone.
    """

    root_id: int | None
    phase: object
    eff: object
    exitc: object
    parent: object
    nxt: object
    paths: dict[int, PredictedPath]
    journal: object = None
    pool: object = None

    def parent_np(self):
        """The int64 parent-edge array (vectorized batch extraction)."""
        return self.parent

    def recycle(self) -> None:
        """Return the state arrays to their pool (caller must own the
        states — i.e. just evicted/replaced their cache entry)."""
        if self.pool is not None and isinstance(self.phase, np.ndarray):
            self.pool.recycle(
                (self.phase, self.eff, self.exitc, self.parent, self.nxt)
            )
            self.pool = None


def _empty_states() -> _CompiledStates:
    """States for a destination absent from the graph."""
    z = np.zeros(0, dtype=np.int64)
    return _CompiledStates(
        None, z, z, np.zeros(0, dtype=np.float64), z, z, {}
    )


#: cap on the summed replay-journal bytes a predictor retains across
#: its cached searches; beyond it the least-recently-used journals are
#: dropped (their searches stay cached but repair falls back to the
#: dirty re-search path)
_JOURNAL_BUDGET_BYTES = 48 << 20


class INanoPredictor:
    """Predicts PoP-level routes between arbitrary prefixes from an atlas."""

    def __init__(
        self,
        atlas: Atlas,
        config: PredictorConfig | None = None,
        from_src_links: dict[tuple[int, int], LinkRecord] | None = None,
        from_src_prefixes: set[int] | None = None,
        client_cluster_as: dict[int, int] | None = None,
        engine: str = "compiled",
        kernel: str = "vector",
        primary_graph: CompiledGraph | None = None,
        fallback_factory=None,
        record_journal: bool = False,
    ) -> None:
        if engine not in ("compiled", "legacy"):
            raise ValueError(f"unknown predictor engine {engine!r}")
        if kernel not in ("vector", "scalar", "numba"):
            raise ValueError(f"unknown search kernel {kernel!r}")
        if primary_graph is not None and engine != "compiled":
            raise ValueError("externally-supplied graphs require the compiled engine")
        self.atlas = atlas
        self.config = config or PredictorConfig.inano()
        self.engine = engine
        #: "vector" (default) runs cold searches through the bucket-queue
        #: kernel (repro.core.search); "scalar" pins the spec loop;
        #: "numba" opts into the JIT inner loops when numba is
        #: importable and degrades to the plain vector kernel otherwise
        self.kernel = kernel
        #: whether the numba JIT layer is actually active (requested
        #: *and* importable); with numba absent this stays False and
        #: ``kernel="numba"`` behaves exactly like ``"vector"``
        self.kernel_jit = False
        if kernel == "numba":
            from repro.core import jit

            self.kernel_jit = jit.available()
        #: record bucket-engine replay journals on cold searches so
        #: value-only delta days can repair cached searches in place
        #: (set by the runtime's PredictorPool)
        self.record_journal = record_journal
        #: lightweight kernel counters the serving layer surfaces:
        #: cache hits/misses and cumulative cold-search microseconds
        self.kernel_stats = {
            "searches": 0,
            "hits": 0,
            "search_us": 0.0,
            "last_search_us": 0.0,
        }
        self._extra_cluster_as = dict(client_cluster_as or {})
        if primary_graph is not None:
            # Runtime-backed mode: the graph (and the lazy closed
            # fallback, via ``fallback_factory``) is owned and kept
            # current by an AtlasRuntime; the predictor never compiles.
            self.graph = primary_graph
        elif self.config.use_from_src:
            self.graph = self._build_graph(from_src_links, closed=False)
        else:
            self.graph = self._build_graph(None, closed=True)
        #: the closed fallback graph, built lazily via :attr:`fallback_graph`
        self._fallback_graph: PredictionGraph | CompiledGraph | None = None
        self._fallback_factory = fallback_factory
        #: prefixes whose queries may start in the FROM_SRC plane (the
        #: client's own); None means any source may use it.
        self.from_src_prefixes = from_src_prefixes
        #: per-(graph version, destination, providers) search results,
        #: true LRU: hits refresh recency, eviction drops the least
        #: recently used. Version keys (not ``id(graph)``, which the
        #: allocator can reuse after GC) can never alias a dead or
        #: since-patched graph.
        self._search_cache: OrderedDict = OrderedDict()
        self._cache_max = _SEARCH_CACHE_MAX

    def _build_graph(
        self,
        from_src_links: dict[tuple[int, int], LinkRecord] | None,
        closed: bool,
    ) -> PredictionGraph | CompiledGraph:
        if self.engine == "legacy":
            return PredictionGraph(
                atlas=self.atlas,
                from_src_links=from_src_links,
                extra_cluster_as=self._extra_cluster_as,
                closed=closed,
            ).build()
        return CompiledGraph.from_atlas(
            self.atlas,
            from_src_links=from_src_links,
            extra_cluster_as=self._extra_cluster_as,
            closed=closed,
        )

    @property
    def fallback_graph(self) -> PredictionGraph | CompiledGraph | None:
        """The closed (Section 4.2) graph backing arbitrary-pair coverage.

        Only exists when ``use_from_src`` is on; built on first access so
        queries the directed planes can answer never pay for it.
        """
        if not self.config.use_from_src:
            return None
        if self._fallback_graph is None:
            if self._fallback_factory is not None:
                self._fallback_graph = self._fallback_factory()
            else:
                self._fallback_graph = self._build_graph(None, closed=True)
        return self._fallback_graph

    def _query_graphs(self):
        yield self.graph
        if self.config.use_from_src:
            yield self.fallback_graph

    # -- public API ----------------------------------------------------------

    def predict(self, src_prefix_index: int, dst_prefix_index: int) -> PredictedPath:
        """Predict the forward route ``src -> dst`` between two prefixes.

        Raises :class:`UnknownEndpointError` if either prefix is not in the
        atlas, :class:`NoPredictedRouteError` if the search fails.
        """
        src_cluster = self.atlas.cluster_of_prefix(src_prefix_index)
        dst_cluster = self.atlas.cluster_of_prefix(dst_prefix_index)
        if src_cluster is None:
            raise UnknownEndpointError(src_prefix_index)
        if dst_cluster is None:
            raise UnknownEndpointError(dst_prefix_index)

        for graph in self._query_graphs():
            states = self._search(graph, dst_cluster, dst_prefix_index)
            path = self._lookup(
                graph, states, src_prefix_index, src_cluster, dst_cluster
            )
            if path is not None:
                return path
        raise NoPredictedRouteError(src_prefix_index, dst_prefix_index)

    def predict_or_none(
        self, src_prefix_index: int, dst_prefix_index: int
    ) -> PredictedPath | None:
        try:
            return self.predict(src_prefix_index, dst_prefix_index)
        except (UnknownEndpointError, NoPredictedRouteError):
            return None

    def predict_batch(
        self, pairs: list[tuple[int, int]]
    ) -> list[PredictedPath | None]:
        """Batched queries (the library API serves these locally).

        Pairs are grouped by destination so every pair sharing a
        destination reuses one backtracking search, endpoints are
        resolved once, and no per-pair exceptions are raised. Results
        align with ``pairs`` and match per-pair :meth:`predict_or_none`.
        """
        out: list[PredictedPath | None] = [None] * len(pairs)
        if not pairs:
            return out
        first_dst = pairs[0][1]
        if all(dst == first_dst for _, dst in pairs):
            # Server fan-in fast path: every pair already shares one
            # destination, so skip the group-by regrouping entirely and
            # run the single group straight through one shared search.
            self._predict_group(first_dst, range(len(pairs)), pairs, out)
            return out
        groups: dict[int, list[int]] = {}
        for i, (_, dst) in enumerate(pairs):
            groups.setdefault(dst, []).append(i)
        for dst, idxs in groups.items():
            self._predict_group(dst, idxs, pairs, out)
        return out

    def _predict_group(self, dst, idxs, pairs, out) -> None:
        """Resolve one destination group of a batch against one search."""
        cluster_of = self.atlas.cluster_of_prefix
        dst_cluster = cluster_of(dst)
        if dst_cluster is None:
            return
        pending = []
        for i in idxs:
            src = pairs[i][0]
            src_cluster = cluster_of(src)
            if src_cluster is not None:
                pending.append((i, src, src_cluster))
        if not pending:
            return
        for graph in self._query_graphs():
            states = self._search(graph, dst_cluster, dst)
            still = []
            if self.engine == "compiled" and states.root_id is not None:
                # Resolve every pending source to its start node
                # first, then extract all uncached paths in one
                # vectorized pass over the CSR parent arrays.
                starts = []
                for item in pending:
                    i, src, src_cluster = item
                    nid = self._start_node(graph, states, src, src_cluster)
                    if nid is None:
                        still.append(item)
                    else:
                        starts.append((i, nid))
                memo = states.paths
                todo = {nid for _, nid in starts if nid not in memo}
                if len(todo) >= _BATCH_EXTRACT_MIN:
                    self._extract_compiled_batch(graph, states, sorted(todo))
                for i, nid in starts:
                    out[i] = self._memoized_extract(graph, states, nid)
            else:
                for item in pending:
                    i, src, src_cluster = item
                    path = self._lookup(
                        graph, states, src, src_cluster, dst_cluster
                    )
                    if path is not None:
                        out[i] = path
                    else:
                        still.append(item)
            pending = still
            if not pending:
                # Don't resume _query_graphs: that would build the
                # lazy fallback graph with nothing left to resolve.
                break

    # -- search ---------------------------------------------------------------

    def _target_priority(
        self, graph: PredictionGraph | CompiledGraph, src_prefix_index: int
    ) -> list[tuple[int, int]]:
        """Planes/sides to try for the source node, in order (Section 4.3.1)."""
        targets: list[tuple[int, int]] = []
        if graph.has_from_src and (
            self.from_src_prefixes is None
            or src_prefix_index in self.from_src_prefixes
        ):
            targets.append((FROM_SRC, UP))
        targets.append((TO_DST, UP))
        targets.append((TO_DST, DOWN))
        return targets

    def _provider_gate(self, dst_prefix_index: int) -> frozenset[int] | None:
        if not self.config.use_providers:
            return None
        return self.atlas.providers_for_prefix(dst_prefix_index)

    def _search(
        self,
        graph: PredictionGraph | CompiledGraph,
        dst_cluster: int,
        dst_prefix_index: int,
    ):
        return self.search_for(
            graph, dst_cluster, self._provider_gate(dst_prefix_index)
        )

    def search_for(
        self,
        graph: PredictionGraph | CompiledGraph,
        dst_cluster: int,
        providers: frozenset[int] | None,
    ):
        """The (cached) per-destination search for an explicit provider
        gate — the providers are part of the cache key, so the runtime's
        warm-start repair and pool prewarming can re-run a cached search
        without resolving a destination prefix."""
        cache_key = (graph.version, dst_cluster, providers)
        cache = self._search_cache
        cached = cache.get(cache_key)
        stats = self.kernel_stats
        if cached is not None:
            cache.move_to_end(cache_key)
            stats["hits"] += 1
            return cached
        from time import perf_counter

        t0 = perf_counter()
        states = self._run_search(graph, dst_cluster, providers)
        us = (perf_counter() - t0) * 1e6
        stats["searches"] += 1
        stats["search_us"] += us
        stats["last_search_us"] = us
        if len(cache) >= self._cache_max:
            _, evicted = cache.popitem(last=False)
            if isinstance(evicted, _CompiledStates):
                evicted.recycle()
        cache[cache_key] = states
        if isinstance(states, _CompiledStates) and states.journal is not None:
            self._trim_journals()
        return states

    def _trim_journals(self) -> None:
        """Drop least-recently-used replay journals until the summed
        journal bytes fit the budget (searches stay cached; repair for
        the trimmed ones falls back to the dirty re-search path)."""
        total = 0
        for st in self._search_cache.values():
            if getattr(st, "journal", None) is not None:
                total += st.journal.nbytes()
        if total <= _JOURNAL_BUDGET_BYTES:
            return
        for st in self._search_cache.values():
            if getattr(st, "journal", None) is not None:
                total -= st.journal.nbytes()
                st.journal = None
                if total <= _JOURNAL_BUDGET_BYTES:
                    break

    def release_search_state(self) -> None:
        """Free every cached search's state arrays and journals and the
        per-graph state-pool freelists this predictor has touched (pool
        release / teardown path)."""
        for st in self._search_cache.values():
            if isinstance(st, _CompiledStates):
                st.journal = None
                st.pool = None
        self._search_cache.clear()
        for graph in (self.graph, self._fallback_graph):
            if isinstance(graph, CompiledGraph):
                graph.search_pool().clear()

    def _run_search(
        self,
        graph: PredictionGraph | CompiledGraph,
        dst_cluster: int,
        providers: frozenset[int] | None,
    ):
        """One uncached search (engine + kernel dispatch, no LRU)."""
        if self.engine == "legacy":
            return self._search_legacy(graph, dst_cluster, providers)
        if self.kernel in ("vector", "numba"):
            root = graph.node_id(TO_DST, DOWN, dst_cluster)
            if root is None:
                return _empty_states()
            pool = graph.search_pool()
            result = run_kernel(
                graph, self.atlas, self.config, providers, root,
                pool=pool, record=self.record_journal,
                use_jit=self.kernel_jit,
            )
            if result is not None:
                phase, eff, exitc, parent, nxt, journal = result
                return _CompiledStates(
                    root, phase, eff, exitc, parent, nxt, {},
                    journal=journal, pool=pool,
                )
            # ASNs too large to pack: fall through to the spec loop
        return self._search_compiled(graph, dst_cluster, providers)

    def _lookup(
        self,
        graph: PredictionGraph | CompiledGraph,
        states,
        src_prefix_index: int,
        src_cluster: int,
        dst_cluster: int,
    ) -> PredictedPath | None:
        """Resolve one source against a finished search, or None."""
        if self.engine == "legacy":
            for plane, side in self._target_priority(graph, src_prefix_index):
                node = (plane, side, src_cluster)
                if node in states:
                    return self._extract(graph, node, states)
            return None
        if states.root_id is None:
            # Destination node absent from the graph: only the trivial
            # src==dst query has an answer (mirroring the legacy
            # root-only states dict, whose sole entry is (TO_DST, DOWN)).
            if src_cluster == dst_cluster:
                return self._trivial_path(graph, dst_cluster)
            return None
        nid = self._start_node(graph, states, src_prefix_index, src_cluster)
        if nid is None:
            return None
        return self._memoized_extract(graph, states, nid)

    def _start_node(
        self,
        graph: CompiledGraph,
        states: _CompiledStates,
        src_prefix_index: int,
        src_cluster: int,
    ) -> int | None:
        """Best reached start node for a source, or None (compiled engine).

        Inlined _target_priority over packed node keys: FROM_SRC/UP
        when permitted, then TO_DST/UP, then TO_DST/DOWN.
        """
        nid_of = graph._id_of.get
        phase = states.phase
        key = src_cluster << 2
        if graph.has_from_src and (
            self.from_src_prefixes is None
            or src_prefix_index in self.from_src_prefixes
        ):
            nid = nid_of(key | (FROM_SRC << 1) | UP)
            if nid is not None and phase[nid]:
                return nid
        nid = nid_of(key | (TO_DST << 1) | UP)
        if nid is not None and phase[nid]:
            return nid
        nid = nid_of(key | (TO_DST << 1) | DOWN)
        if nid is not None and phase[nid]:
            return nid
        return None

    def _memoized_extract(
        self, graph: CompiledGraph, states: _CompiledStates, nid: int
    ) -> PredictedPath:
        memo = states.paths
        path = memo.get(nid)
        if path is None:
            path = self._extract_compiled(graph, states, nid)
            if len(memo) < _PATH_MEMO_MAX:
                memo[nid] = path
        return path

    # -- legacy engine (the executable specification) -------------------------

    def _candidate(
        self,
        edge: Edge,
        su: _NodeState,
        providers: frozenset[int] | None,
    ) -> _NodeState | None:
        """State for reaching ``edge.src`` via ``edge`` then ``su``, or None."""
        cfg = self.config
        crossing = edge.src_asn != edge.dst_asn
        if crossing:
            if cfg.use_three_tuples and su.next_asn is not None:
                if not tuple_check(
                    self.atlas.three_tuples,
                    self.atlas.as_degrees,
                    edge.src_asn,
                    edge.dst_asn,
                    su.next_asn,
                    cfg.tuple_degree_threshold,
                ):
                    return None
            if providers is not None and su.next_asn is None:
                if edge.src_asn not in providers:
                    return None
        phase, cost = self._compose(edge, su)
        if phase is None:
            return None
        next_asn = edge.dst_asn if crossing else su.next_asn
        return _NodeState(phase=phase, cost=cost, parent_edge=edge, next_asn=next_asn)

    def _search_legacy(
        self,
        graph: PredictionGraph,
        dst_cluster: int,
        providers: frozenset[int] | None,
    ) -> dict[Node, _NodeState]:
        prefers = self.atlas.prefers
        best: dict[Node, _NodeState] = {}
        finalized: set[Node] = set()
        counter = itertools.count()
        heap: list[tuple[int, int, float, int, Node]] = []

        root: Node = (TO_DST, DOWN, dst_cluster)
        best[root] = _NodeState(
            phase=1, cost=ZERO_COST, parent_edge=None, next_asn=None
        )
        heapq.heappush(heap, (1, 0, 0.0, next(counter), root))

        def settle(entry) -> None:
            u = entry[-1]
            if u != root:
                # Pop-time re-evaluation: among *finalized* out-neighbors,
                # keep the best parent under the full comparator (this is
                # where equal-length AS preferences actually bite).
                for edge in graph.outgoing(u):
                    if edge.dst not in finalized:
                        continue
                    candidate = self._candidate(edge, best[edge.dst], providers)
                    if candidate is not None and self._improves(
                        candidate, best.get(u), edge.src_asn, prefers
                    ):
                        best[u] = candidate
            finalized.add(u)
            su = best[u]
            for edge in graph.incoming(u):
                v = edge.src
                if v in finalized:
                    continue
                candidate = self._candidate(edge, su, providers)
                if candidate is None:
                    continue
                if self._improves(candidate, best.get(v), edge.src_asn, prefers):
                    best[v] = candidate
                    cost = candidate.cost
                    heapq.heappush(
                        heap,
                        (
                            candidate.phase,
                            cost.effective_hops,
                            cost.exit_cost_ms,
                            next(counter),
                            v,
                        ),
                    )

        lazy_heap_loop(heap, finalized.__contains__, settle)
        return best

    @staticmethod
    def _compose(edge: Edge, su: _NodeState) -> tuple[int | None, PathCost | None]:
        """Phase and cost of reaching ``edge.src`` via ``edge`` then ``su``."""
        kind = edge.kind
        if kind is EdgeKind.INTRA:
            return su.phase, su.cost.extend_intra(edge.latency_ms)
        if kind in (EdgeKind.SELF_DOWN, EdgeKind.PLANE_CROSS):
            return su.phase, su.cost.extend_intra(0.0)
        if kind is EdgeKind.LATE_EXIT:
            return su.phase, su.cost.extend_late_exit(edge.latency_ms)
        if kind is EdgeKind.SIBLING:
            return su.phase, su.cost.extend_inter()
        if kind is EdgeKind.DOWN_EDGE:
            return 1, su.cost.extend_inter()
        if kind is EdgeKind.PEER:
            return 2, su.cost.extend_inter()
        if kind is EdgeKind.UP_EDGE:
            return 3, su.cost.extend_inter()
        return None, None

    def _improves(
        self,
        candidate: _NodeState,
        incumbent: _NodeState | None,
        chooser_asn: int,
        prefers,
    ) -> bool:
        if incumbent is None:
            return True
        ck, ik = candidate.key(), incumbent.key()
        if ck != ik:
            return ck < ik
        if self.config.use_preferences:
            cand_next = self._choice_asn(candidate, chooser_asn)
            inc_next = self._choice_asn(incumbent, chooser_asn)
            if cand_next is not None and inc_next is not None and cand_next != inc_next:
                if prefers(chooser_asn, cand_next, inc_next):
                    return True
                if prefers(chooser_asn, inc_next, cand_next):
                    return False
        return candidate.cost.exit_cost_ms < incumbent.cost.exit_cost_ms

    @staticmethod
    def _choice_asn(state: _NodeState, chooser_asn: int) -> int | None:
        """The next-hop AS this state routes through, from the chooser's view."""
        edge = state.parent_edge
        if edge is None:
            return None
        if edge.dst_asn != chooser_asn:
            return edge.dst_asn
        return state.next_asn

    # -- compiled engine -------------------------------------------------------

    def _search_compiled(
        self,
        cg: CompiledGraph,
        dst_cluster: int,
        providers: frozenset[int] | None,
    ) -> _CompiledStates:
        """Array-native backtracking Dijkstra over the CSR core.

        Semantically identical to :meth:`_search_legacy` — same candidate
        checks, same comparator, same tie-breaking (heap counters advance
        in the same order because CSR edge lists preserve emission order).
        The ``(as_hops, pending)`` split collapses to effective hops,
        which is the only component the comparator and the public
        ``as_hops`` ever observe.
        """
        root = cg.node_id(TO_DST, DOWN, dst_cluster)
        if root is None:
            return _empty_states()
        cfg = self.config
        use_tuples = cfg.use_three_tuples
        use_prefs = cfg.use_preferences
        thresh = cfg.tuple_degree_threshold
        tuples = self.atlas.three_tuples
        dget = self.atlas.as_degrees.get
        prefs = self.atlas.preferences
        e_src = cg.e_src
        e_dst = cg.e_dst
        e_lat = cg.e_lat
        e_sa = cg.e_src_asn
        e_da = cg.e_dst_asn
        e_op = cg.e_op
        e_ph = cg.e_phase
        rev_off = cg.rev_off
        rev_lst = cg.rev_lst
        fwd_off = cg.fwd_off
        fwd_lst = cg.fwd_lst
        n = cg.n_nodes
        phase = [0] * n
        eff = [0] * n
        exitc = [0.0] * n
        parent = [-1] * n
        nxt = [-1] * n
        finalized = bytearray(n)
        heappush = heapq.heappush
        heappop = heapq.heappop
        phase[root] = 1
        heap: list[tuple[int, int, float, int, int]] = [(1, 0, 0.0, 0, root)]
        count = 1

        while heap:
            u = heappop(heap)[4]
            if finalized[u]:
                continue
            if u != root:
                # Pop-time re-evaluation over finalized out-neighbors.
                for ei in fwd_lst[fwd_off[u]:fwd_off[u + 1]]:
                    w = e_dst[ei]
                    if not finalized[w]:
                        continue
                    a = e_sa[ei]
                    b = e_da[ei]
                    sn = nxt[w]
                    if a != b:
                        if (
                            use_tuples
                            and sn != -1
                            and b != sn
                            and dget(b, 0) > thresh
                            and (a, b, sn) not in tuples
                        ):
                            continue
                        if providers is not None and sn == -1 and a not in providers:
                            continue
                        nn = b
                    else:
                        nn = sn
                    op = e_op[ei]
                    if op == OP_INTRA:
                        np_ = phase[w]
                        ne = eff[w]
                        nx = exitc[w] + e_lat[ei]
                    elif op == OP_LATE_EXIT:
                        np_ = phase[w]
                        ne = eff[w] + 1
                        nx = exitc[w] + e_lat[ei]
                    elif op == OP_SIBLING:
                        np_ = phase[w]
                        ne = eff[w] + 1
                        nx = 0.0
                    else:
                        np_ = e_ph[ei]
                        ne = eff[w] + 1
                        nx = 0.0
                    ip = phase[u]
                    ie = eff[u]
                    if np_ != ip or ne != ie:
                        if np_ > ip or (np_ == ip and ne > ie):
                            continue
                    else:
                        if use_prefs:
                            cc = b if b != a else nn
                            pi = parent[u]
                            if pi >= 0:
                                pd = e_da[pi]
                                ic = pd if pd != a else nxt[u]
                            else:
                                ic = -1
                            if cc != -1 and ic != -1 and cc != ic:
                                if (a, cc, ic) in prefs:
                                    pass
                                elif (a, ic, cc) in prefs:
                                    continue
                                elif nx >= exitc[u]:
                                    continue
                            elif nx >= exitc[u]:
                                continue
                        elif nx >= exitc[u]:
                            continue
                    phase[u] = np_
                    eff[u] = ne
                    exitc[u] = nx
                    parent[u] = ei
                    nxt[u] = nn
            finalized[u] = 1
            sp = phase[u]
            se = eff[u]
            sx = exitc[u]
            sn = nxt[u]
            for ei in rev_lst[rev_off[u]:rev_off[u + 1]]:
                v = e_src[ei]
                if finalized[v]:
                    continue
                a = e_sa[ei]
                b = e_da[ei]
                if a != b:
                    if (
                        use_tuples
                        and sn != -1
                        and b != sn
                        and dget(b, 0) > thresh
                        and (a, b, sn) not in tuples
                    ):
                        continue
                    if providers is not None and sn == -1 and a not in providers:
                        continue
                    nn = b
                else:
                    nn = sn
                op = e_op[ei]
                if op == OP_INTRA:
                    np_ = sp
                    ne = se
                    nx = sx + e_lat[ei]
                elif op == OP_LATE_EXIT:
                    np_ = sp
                    ne = se + 1
                    nx = sx + e_lat[ei]
                elif op == OP_SIBLING:
                    np_ = sp
                    ne = se + 1
                    nx = 0.0
                else:
                    np_ = e_ph[ei]
                    ne = se + 1
                    nx = 0.0
                ip = phase[v]
                if ip:
                    ie = eff[v]
                    if np_ != ip or ne != ie:
                        if np_ > ip or (np_ == ip and ne > ie):
                            continue
                    else:
                        if use_prefs:
                            cc = b if b != a else nn
                            pi = parent[v]
                            if pi >= 0:
                                pd = e_da[pi]
                                ic = pd if pd != a else nxt[v]
                            else:
                                ic = -1
                            if cc != -1 and ic != -1 and cc != ic:
                                if (a, cc, ic) in prefs:
                                    pass
                                elif (a, ic, cc) in prefs:
                                    continue
                                elif nx >= exitc[v]:
                                    continue
                            elif nx >= exitc[v]:
                                continue
                        elif nx >= exitc[v]:
                            continue
                phase[v] = np_
                eff[v] = ne
                exitc[v] = nx
                parent[v] = ei
                nxt[v] = nn
                heappush(heap, (np_, ne, nx, count, v))
                count += 1

        # Wrap the spec loop's python lists into the same array-native
        # representation the kernel produces (bit-exact: python floats
        # are IEEE doubles).
        return _CompiledStates(
            root,
            np.array(phase, dtype=np.int64),
            np.array(eff, dtype=np.int64),
            np.array(exitc, dtype=np.float64),
            np.array(parent, dtype=np.int64),
            np.array(nxt, dtype=np.int64),
            {},
        )

    # -- extraction -------------------------------------------------------------

    def _extract(
        self, graph: PredictionGraph, start: Node, states: dict[Node, _NodeState]
    ) -> PredictedPath:
        clusters: list[int] = []
        as_path: list[int] = []
        latency = 0.0
        success = 1.0
        used_from_src = start[0] == FROM_SRC

        node = start
        while True:
            cluster = node[2]
            if not clusters or clusters[-1] != cluster:
                clusters.append(cluster)
            asn = graph.asn_of(cluster)
            if asn is not None and (not as_path or as_path[-1] != asn):
                as_path.append(asn)
            state = states[node]
            edge = state.parent_edge
            if edge is None:
                break
            latency += edge.latency_ms
            success *= 1.0 - edge.loss
            node = edge.dst

        final_state = states[start]
        return PredictedPath(
            clusters=tuple(clusters),
            as_path=tuple(as_path),
            latency_ms=latency,
            loss=1.0 - success,
            as_hops=final_state.cost.effective_hops,
            used_from_src=used_from_src,
        )

    def _extract_compiled(
        self, cg: CompiledGraph, states: _CompiledStates, start: int
    ) -> PredictedPath:
        clusters: list[int] = []
        as_path: list[int] = []
        latency = 0.0
        success = 1.0
        node_cluster = cg.node_cluster
        node_asn = cg.node_asn
        e_dst = cg.e_dst
        e_lat = cg.e_lat
        e_loss = cg.e_loss
        parent = states.parent
        used_from_src = cg.node_plane[start] == FROM_SRC

        u = start
        while True:
            cluster = node_cluster[u]
            if not clusters or clusters[-1] != cluster:
                clusters.append(cluster)
            asn = node_asn[u]
            if not as_path or as_path[-1] != asn:
                as_path.append(asn)
            ei = int(parent[u])
            if ei < 0:
                break
            latency += e_lat[ei]
            success *= 1.0 - e_loss[ei]
            u = e_dst[ei]

        return PredictedPath(
            clusters=tuple(clusters),
            as_path=tuple(as_path),
            latency_ms=latency,
            loss=1.0 - success,
            as_hops=int(states.eff[start]),
            used_from_src=used_from_src,
        )

    def _extract_compiled_batch(
        self, cg: CompiledGraph, states: _CompiledStates, nids: list[int]
    ) -> None:
        """Extract many paths in one pass over the CSR parent arrays.

        Vectorized counterpart of :meth:`_extract_compiled`: all parent
        chains advance one hop per numpy step, accumulating latency and
        success in the same per-hop order as the scalar walk (so floats
        are bit-identical), then the cluster/AS sequences are assembled
        from the collected node matrix. Results land in the per-search
        path memo, subject to the same ``_PATH_MEMO_MAX`` cap.
        """
        import numpy as np

        e_dst, e_lat, e_loss, node_cluster, node_asn, node_plane = cg.np_views()
        parent = states.parent_np()
        n = len(nids)
        cur = np.array(nids, dtype=np.int64)
        lat = np.zeros(n)
        succ = np.ones(n)
        rows = [cur]
        while True:
            pe = np.where(cur >= 0, parent[np.maximum(cur, 0)], -1)
            act = pe >= 0
            if not act.any():
                break
            pe_safe = np.maximum(pe, 0)
            lat = lat + np.where(act, e_lat[pe_safe], 0.0)
            succ = succ * np.where(act, 1.0 - e_loss[pe_safe], 1.0)
            cur = np.where(act, e_dst[pe_safe], np.int64(-1))
            rows.append(cur)
        mat = np.vstack(rows)
        safe = np.maximum(mat, 0)
        cluster_cols = node_cluster[safe].T.tolist()
        asn_cols = node_asn[safe].T.tolist()
        valid_cols = (mat >= 0).T.tolist()
        lat_list = lat.tolist()
        loss_list = (1.0 - succ).tolist()
        from_src_flags = (node_plane[np.array(nids)] == FROM_SRC).tolist()
        eff = states.eff
        memo = states.paths
        for k, nid in enumerate(nids):
            if len(memo) >= _PATH_MEMO_MAX:
                break
            clusters: list[int] = []
            as_path: list[int] = []
            c_col = cluster_cols[k]
            a_col = asn_cols[k]
            for t, ok in enumerate(valid_cols[k]):
                if not ok:
                    break
                c = c_col[t]
                if not clusters or clusters[-1] != c:
                    clusters.append(c)
                a = a_col[t]
                if not as_path or as_path[-1] != a:
                    as_path.append(a)
            memo[nid] = PredictedPath(
                clusters=tuple(clusters),
                as_path=tuple(as_path),
                latency_ms=lat_list[k],
                loss=loss_list[k],
                as_hops=int(eff[nid]),
                used_from_src=from_src_flags[k],
            )

    @staticmethod
    def _trivial_path(cg: CompiledGraph, dst_cluster: int) -> PredictedPath:
        asn = cg.asn_of(dst_cluster)
        return PredictedPath(
            clusters=(dst_cluster,),
            as_path=(asn,) if asn is not None else (),
            latency_ms=0.0,
            loss=0.0,
            as_hops=0,
            used_from_src=False,
        )
