"""Evaluation harness: scenario presets, validation sets, metrics, reports.

`repro.eval.scenarios` builds the full pipeline (topology -> routing ->
measurement -> atlas -> predictors) for named presets and caches the
result per process, so the benchmark suite pays the construction cost
once. Everything downstream (Figures 4-11, Tables 1-2) pulls from a
:class:`Scenario`.
"""

from repro.eval.scenarios import Scenario, ScenarioConfig, get_scenario
from repro.eval.validation import ValidationSource, ValidationSet
from repro.eval.accuracy import (
    as_path_metrics,
    latency_errors_ms,
    loss_errors,
    ranking_overlap,
)
from repro.eval.similarity import path_similarity
from repro.eval.reporting import render_cdf_rows, render_table

__all__ = [
    "Scenario",
    "ScenarioConfig",
    "get_scenario",
    "ValidationSource",
    "ValidationSet",
    "as_path_metrics",
    "latency_errors_ms",
    "loss_errors",
    "ranking_overlap",
    "path_similarity",
    "render_cdf_rows",
    "render_table",
]
