"""Validation-set construction (Section 6.3).

The paper holds out 37 of its 197 vantage points as "representative end
hosts", keeps 100 of each's traceroutes as ground truth, and gives the
predictor 100 *other* traceroutes from the same host as its FROM_SRC
plane (the atlas's TO_DST plane comes from the remaining vantage points).
We reproduce that structure at configurable scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.builder import build_from_src_links
from repro.atlas.model import Atlas, LinkRecord
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.measurement.clustering import ClusterMap
from repro.measurement.traceroute import Traceroute, TracerouteSimulator
from repro.measurement.vantage import VantagePoint
from repro.util.rng import derive_rng


@dataclass
class ValidationSource:
    """One held-out end host with its FROM_SRC plane and target list."""

    vantage: VantagePoint
    validation_targets: list[int]
    from_src_traces: list[Traceroute] = field(repr=False, default_factory=list)
    from_src_links: dict[tuple[int, int], LinkRecord] = field(
        repr=False, default_factory=dict
    )
    cluster_map: ClusterMap | None = field(repr=False, default=None)
    _predictors: dict[PredictorConfig, INanoPredictor] = field(
        repr=False, default_factory=dict
    )

    def predictor(self, atlas: Atlas, config: PredictorConfig) -> INanoPredictor:
        """This source's predictor under ``config`` (cached per config)."""
        if config not in self._predictors:
            self._predictors[config] = INanoPredictor(
                atlas,
                config=config,
                from_src_links=self.from_src_links or None,
                client_cluster_as=(
                    self.cluster_map.cluster_asn if self.cluster_map else None
                ),
            )
        return self._predictors[config]


@dataclass
class ValidationSet:
    """All held-out sources plus the shared target universe."""

    sources: list[ValidationSource]

    def pairs(self) -> list[tuple[int, int]]:
        """All (src_prefix, dst_prefix) validation pairs."""
        return [
            (source.vantage.prefix_index, dst)
            for source in self.sources
            for dst in source.validation_targets
        ]


def build_validation_set(
    validation_vps: list[VantagePoint],
    all_targets: list[int],
    simulator: TracerouteSimulator,
    base_cluster_map: ClusterMap,
    prefix_to_as: dict[int, int],
    targets_per_source: int = 40,
    from_src_traces_per_source: int = 40,
    seed: int = 0,
) -> ValidationSet:
    """Construct the Section 6.3 validation structure.

    For each held-out vantage point: sample disjoint target sets for
    validation and for the FROM_SRC plane, issue the FROM_SRC traceroutes,
    and extend a private copy of the cluster map with the client-observed
    interfaces.
    """
    sources: list[ValidationSource] = []
    for vp in validation_vps:
        rng = derive_rng(seed, f"validation.{vp.name}")
        candidates = [p for p in all_targets if p != vp.prefix_index]
        need = targets_per_source + from_src_traces_per_source
        k = min(need, len(candidates))
        picked = [int(p) for p in rng.choice(candidates, size=k, replace=False)]
        val_targets = picked[:targets_per_source]
        fs_targets = picked[targets_per_source:]
        fs_traces = [simulator.trace_to_prefix(vp, p) for p in fs_targets]
        cmap = base_cluster_map.clone()
        cmap.extend_with_client_traces(fs_traces, prefix_to_as)
        sources.append(
            ValidationSource(
                vantage=vp,
                validation_targets=val_targets,
                from_src_traces=fs_traces,
                from_src_links=build_from_src_links(fs_traces, cmap),
                cluster_map=cmap,
            )
        )
    return ValidationSet(sources=sources)
