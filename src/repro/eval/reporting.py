"""Plain-text rendering of the paper's tables and figures.

Benchmarks print these so ``pytest benchmarks/ --benchmark-only`` output
reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.util.stats import Cdf


def render_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Fixed-width table with a title rule."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [title, "=" * len(title), fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in str_rows]
    return "\n".join(lines)


def render_cdf_rows(
    title: str, series: dict[str, list[float]], points: Sequence[float], unit: str = ""
) -> str:
    """Render several CDFs evaluated at common x points, one row per x."""
    headers = ["x" + (f" ({unit})" if unit else "")] + list(series)
    cdfs = {name: Cdf(values) for name, values in series.items()}
    rows = []
    for x in points:
        rows.append(
            [f"{x:g}"] + [f"{cdfs[name].at(x):.2f}" for name in series]
        )
    return render_table(title, headers, rows)


def render_bars(title: str, values: dict[str, float], width: int = 40) -> str:
    """Horizontal bar chart for Figure 5-style comparisons."""
    if not values:
        return title
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = [title, "=" * len(title)]
    for name, value in values.items():
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{name.ljust(label_width)}  {value:7.3f}  |{bar}")
    return "\n".join(lines)
