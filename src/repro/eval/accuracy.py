"""Accuracy metrics for Figures 5-8.

All metrics pair a prediction with its ground truth; missing predictions
(None) count against accuracy exactly as the paper's evaluation counts
failed predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class AsPathMetrics:
    """Figure 5's two bars for one technique."""

    n: int
    exact_matches: int
    length_matches: int
    failures: int

    @property
    def exact_fraction(self) -> float:
        return self.exact_matches / self.n if self.n else 0.0

    @property
    def length_fraction(self) -> float:
        return self.length_matches / self.n if self.n else 0.0


def as_path_metrics(
    predictions: Sequence[tuple[int, ...] | None],
    truths: Sequence[tuple[int, ...]],
) -> AsPathMetrics:
    """Exact-match and length-match fractions over aligned pairs."""
    if len(predictions) != len(truths):
        raise ValueError("predictions and truths must align")
    exact = length = failures = 0
    for predicted, truth in zip(predictions, truths):
        if predicted is None:
            failures += 1
            continue
        if predicted == truth:
            exact += 1
        if len(predicted) == len(truth):
            length += 1
    return AsPathMetrics(
        n=len(truths), exact_matches=exact, length_matches=length, failures=failures
    )


def latency_errors_ms(
    predictions: Sequence[float | None], truths: Sequence[float]
) -> list[float]:
    """Absolute RTT estimation errors (Figure 6); failures become +inf."""
    if len(predictions) != len(truths):
        raise ValueError("predictions and truths must align")
    return [
        abs(p - t) if p is not None else float("inf")
        for p, t in zip(predictions, truths)
    ]


def loss_errors(
    predictions: Sequence[float | None], truths: Sequence[float]
) -> list[float]:
    """Absolute loss-rate estimation errors (Figure 8); failures -> 1.0."""
    if len(predictions) != len(truths):
        raise ValueError("predictions and truths must align")
    return [
        abs(p - t) if p is not None else 1.0 for p, t in zip(predictions, truths)
    ]


def ranking_overlap(
    estimated: dict[int, float], actual: dict[int, float], k: int = 10
) -> int:
    """|top-k by estimate ∩ top-k by truth| (Figure 7's metric).

    ``estimated``/``actual`` map destination ids to latencies; lower is
    closer. Destinations missing an estimate rank last.
    """
    if not actual:
        return 0
    k = min(k, len(actual))
    actual_top = {
        d for d, _ in sorted(actual.items(), key=lambda kv: (kv[1], kv[0]))[:k]
    }
    def estimate_key(item: tuple[int, float]) -> tuple[float, int]:
        return (item[1], item[0])

    padded = {d: estimated.get(d, float("inf")) for d in actual}
    estimated_top = {
        d for d, _ in sorted(padded.items(), key=estimate_key)[:k]
    }
    return len(actual_top & estimated_top)
