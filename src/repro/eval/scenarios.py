"""Scenario presets: the full pipeline, built lazily and cached per process.

A :class:`Scenario` wires together everything the experiments need:

    topology (per day) -> routing engines -> vantage points -> traceroute
    campaign -> alias resolution -> clustering -> BGP feed -> atlas (per
    day) -> validation set -> predictors / baselines -> applications.

``get_scenario("small")`` (tests) and ``get_scenario("default")``
(benchmarks) return process-cached instances, so a benchmark session pays
the construction cost once.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.atlas.builder import AtlasBuilder, AtlasInputs
from repro.atlas.model import Atlas
from repro.baselines.composition import PathCompositionPredictor
from repro.baselines.oasis import OasisSelector
from repro.baselines.vivaldi import VivaldiConfig, VivaldiSystem
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.errors import NoRouteError, RoutingError
from repro.eval.validation import ValidationSet, build_validation_set
from repro.measurement.aliases import resolve_aliases
from repro.measurement.bgp_feed import BgpFeedSnapshot, collect_bgp_feed
from repro.measurement.clustering import ClusterMap, build_cluster_map, cluster_pop_map
from repro.measurement.ping import PingProber
from repro.measurement.traceroute import Traceroute, TracerouteSimulator
from repro.measurement.vantage import VantagePoint, probe_targets, select_vantage_points
from repro.routing.bgp import RouteOracle
from repro.routing.dynamics import DayConfig, evolve_topology
from repro.routing.forwarding import ForwardingEngine
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.model import Topology
from repro.util.ids import PrefixId
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ScenarioConfig:
    """Scale knobs for a full experiment pipeline."""

    name: str = "default"
    seed: int = 7
    n_tier1: int = 6
    n_tier2: int = 40
    n_tier3: int = 160
    n_atlas_vps: int = 40
    n_validation_vps: int = 10
    n_feed_peers: int = 25
    targets_per_source: int = 40
    from_src_traces_per_source: int = 40
    measure_loss: bool = True

    @classmethod
    def small(cls) -> "ScenarioConfig":
        """Unit-test scale: builds in a couple of seconds."""
        return cls(
            name="small",
            seed=3,
            n_tier1=4,
            n_tier2=14,
            n_tier3=50,
            n_atlas_vps=24,
            n_validation_vps=4,
            n_feed_peers=20,
            targets_per_source=20,
            from_src_traces_per_source=20,
        )

    @classmethod
    def default(cls) -> "ScenarioConfig":
        """Benchmark scale (Section 6's shape at laptop size)."""
        return cls()

    def topology_config(self) -> TopologyConfig:
        return TopologyConfig(
            seed=self.seed,
            n_tier1=self.n_tier1,
            n_tier2=self.n_tier2,
            n_tier3=self.n_tier3,
        )


#: Day-evolution magnitudes tuned so Figure 4's stationarity shape holds:
#: a majority of PoP paths identical across a day, most similarity >= 0.75,
#: but with enough routing churn (tie-break swaps, preference/announcement
#: toggles, interconnect churn, intra-domain cost jitter standing in for
#: the load balancing we do not model) that daily deltas are non-trivial.
STATIONARITY_DAY_CONFIG = DayConfig(
    rank_shuffle_fraction=0.8,
    deviation_toggle_prob=0.08,
    latency_jitter_fraction=0.6,
    latency_jitter_sigma=0.2,
    interconnect_drop_prob=0.04,
    interconnect_add_prob=0.08,
)


class Scenario:
    """Lazily-built experiment pipeline for one :class:`ScenarioConfig`."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self._topologies: dict[int, Topology] = {}
        self._engines: dict[int, ForwardingEngine] = {}
        self._traces: dict[int, list[Traceroute]] = {}
        self._atlases: dict[int, Atlas] = {}
        self._cluster_maps: dict[int, ClusterMap] = {}
        self._feeds: dict[int, BgpFeedSnapshot] = {}
        self._validation: ValidationSet | None = None
        self._vivaldi: VivaldiSystem | None = None
        self._oasis: OasisSelector | None = None
        self._shared_predictors: dict[PredictorConfig, INanoPredictor] = {}
        self._composition: dict[bool, PathCompositionPredictor] = {}
        self._rtt_cache: dict[tuple[int, int], float | None] = {}

    # -- ground truth ---------------------------------------------------------

    def topology(self, day: int = 0) -> Topology:
        if day not in self._topologies:
            if day == 0:
                self._topologies[0] = generate_topology(self.config.topology_config())
            else:
                self._topologies[day] = evolve_topology(
                    self.topology(0), day, STATIONARITY_DAY_CONFIG, seed=self.config.seed
                )
        return self._topologies[day]

    def engine(self, day: int = 0) -> ForwardingEngine:
        if day not in self._engines:
            topo = self.topology(day)
            self._engines[day] = ForwardingEngine(topo, RouteOracle(topo))
        return self._engines[day]

    def all_prefixes(self) -> list[int]:
        return probe_targets(self.topology(0))

    def true_rtt_ms(self, src_prefix: int, dst_prefix: int, day: int = 0) -> float | None:
        """Ground-truth RTT with caching (day 0 only is cached)."""
        key = (src_prefix, dst_prefix)
        if day != 0:
            return self._uncached_rtt(src_prefix, dst_prefix, day)
        if key not in self._rtt_cache:
            self._rtt_cache[key] = self._uncached_rtt(src_prefix, dst_prefix, 0)
        return self._rtt_cache[key]

    def _uncached_rtt(self, src: int, dst: int, day: int) -> float | None:
        try:
            return self.engine(day).end_to_end(src, dst).rtt_ms
        except (NoRouteError, RoutingError):
            return None

    # -- measurement ------------------------------------------------------------

    def vantage_points(self) -> list[VantagePoint]:
        return select_vantage_points(
            self.topology(0),
            self.config.n_atlas_vps + self.config.n_validation_vps,
            kind="planetlab",
            seed=self.config.seed,
        )

    def atlas_vps(self) -> list[VantagePoint]:
        return self.vantage_points()[: self.config.n_atlas_vps]

    def validation_vps(self) -> list[VantagePoint]:
        return self.vantage_points()[self.config.n_atlas_vps :]

    def simulator(self, day: int = 0) -> TracerouteSimulator:
        return TracerouteSimulator(
            self.topology(day),
            self.engine(day),
            derive_rng(self.config.seed, f"scenario.traceroute.day{day}"),
            day=day,
        )

    def traces(self, day: int = 0) -> list[Traceroute]:
        if day not in self._traces:
            sim = self.simulator(day)
            self._traces[day] = sim.campaign(self.atlas_vps(), self.all_prefixes())
        return self._traces[day]

    def cluster_map(self, day: int = 0) -> ClusterMap:
        """Cluster map; day > 0 reuses day 0's clustering (stable ids)."""
        if 0 not in self._cluster_maps:
            traces = self.traces(0)
            topo = self.topology(0)
            ips = {
                ip
                for trace in traces
                for ip in trace.responsive_ips
                if topo.has_interface(ip)
            }
            aliases = resolve_aliases(topo, ips, seed=self.config.seed)
            self._cluster_maps[0] = build_cluster_map(
                topo, aliases, traces, seed=self.config.seed
            )
        if day == 0:
            return self._cluster_maps[0]
        if day not in self._cluster_maps:
            # New interfaces appearing on later days get fresh clusters.
            topo = self.topology(day)
            traces = self.traces(day)
            cmap = self._cluster_maps[0].clone()
            extra_ips = {
                ip
                for trace in traces
                for ip in trace.responsive_ips
                if topo.has_interface(ip) and ip not in cmap.interface_cluster
            }
            aliases = resolve_aliases(topo, extra_ips, seed=self.config.seed + day)
            new_map = build_cluster_map(topo, aliases, traces, seed=self.config.seed + day)
            for ip, cluster in new_map.interface_cluster.items():
                cmap.interface_cluster.setdefault(ip, cluster)
                cmap.cluster_asn.setdefault(cluster, new_map.cluster_asn[cluster])
            for prefix, cluster in new_map.prefix_cluster.items():
                cmap.prefix_cluster.setdefault(prefix, cluster)
            self._cluster_maps[day] = cmap
        return self._cluster_maps[day]

    def feed(self, day: int = 0) -> BgpFeedSnapshot:
        if day not in self._feeds:
            self._feeds[day] = collect_bgp_feed(
                self.topology(day),
                self.engine(day).oracle,
                n_peers=self.config.n_feed_peers,
                seed=self.config.seed,
                day=day,
            )
        return self._feeds[day]

    # -- atlas ---------------------------------------------------------------------

    def atlas(self, day: int = 0) -> Atlas:
        if day not in self._atlases:
            topo = self.topology(day)
            cmap = self.cluster_map(day)
            loss_prober = None
            if self.config.measure_loss:
                prober = PingProber(
                    topo,
                    self.engine(day),
                    derive_rng(self.config.seed, f"scenario.loss.day{day}"),
                )
                pop_map = cluster_pop_map(topo, cmap)

                def loss_prober(vp_prefix, path, pos, _p=prober, _m=pop_map):
                    return _p.measure_cluster_link_loss(vp_prefix, path, pos, _m)

            inputs = AtlasInputs(
                traceroutes=self.traces(day),
                cluster_map=cmap,
                feed=self.feed(day),
                loss_prober=loss_prober,
                day=day,
            )
            self._atlases[day] = AtlasBuilder(inputs).build()
        return self._atlases[day]

    # -- validation & predictors -------------------------------------------------

    def validation_set(self) -> ValidationSet:
        if self._validation is None:
            self._validation = build_validation_set(
                validation_vps=self.validation_vps(),
                all_targets=self.all_prefixes(),
                simulator=self.simulator(0),
                base_cluster_map=self.cluster_map(0),
                prefix_to_as=self.feed(0).prefix_to_as(),
                targets_per_source=self.config.targets_per_source,
                from_src_traces_per_source=self.config.from_src_traces_per_source,
                seed=self.config.seed,
            )
        return self._validation

    def shared_predictor(self, config: PredictorConfig | None = None) -> INanoPredictor:
        """Atlas-only predictor (no FROM_SRC), e.g. for the applications."""
        config = config or PredictorConfig.inano()
        if config not in self._shared_predictors:
            self._shared_predictors[config] = INanoPredictor(self.atlas(0), config)
        return self._shared_predictors[config]

    def composition_predictor(self, improved: bool = False) -> PathCompositionPredictor:
        """The iPlane path-composition baseline over the same measurements."""
        if improved not in self._composition:
            extra: dict[int, int] = {}
            for source in self.validation_set().sources:
                if source.cluster_map is not None:
                    extra.update(source.cluster_map.cluster_asn)
            predictor = PathCompositionPredictor(
                self.atlas(0), improved=improved, extra_cluster_as=extra
            )
            cmap = self.cluster_map(0)
            for trace in self.traces(0):
                for segment in cmap.cluster_segments_with_rtts(trace):
                    predictor.add_measured_path(
                        segment, trace.src_prefix_index, trace.dst_prefix_index,
                        reached=trace.reached,
                    )
            for source in self.validation_set().sources:
                scmap = source.cluster_map or cmap
                for trace in source.from_src_traces:
                    for segment in scmap.cluster_segments_with_rtts(trace):
                        predictor.add_measured_path(
                            segment, trace.src_prefix_index, trace.dst_prefix_index,
                            reached=trace.reached,
                        )
            self._composition[improved] = predictor
        return self._composition[improved]

    def vivaldi(self) -> VivaldiSystem:
        """Vivaldi coordinates trained on the validation hosts + targets."""
        if self._vivaldi is None:
            system = VivaldiSystem(VivaldiConfig(seed=self.config.seed))
            nodes = sorted(
                {vp.prefix_index for vp in self.validation_vps()}
                | {
                    dst
                    for source in self.validation_set().sources
                    for dst in source.validation_targets
                }
            )
            rng = derive_rng(self.config.seed, "scenario.vivaldi")

            def rtt_fn(a: int, b: int) -> float | None:
                rtt = self.true_rtt_ms(a, b)
                if rtt is None:
                    return None
                return rtt * float(1.0 + rng.normal(0, 0.02))

            system.train(nodes, rtt_fn)
            self._vivaldi = system
        return self._vivaldi

    def oasis(self, clients: list[int], replicas: list[int]) -> OasisSelector:
        """OASIS-like selector registered over the given prefix ids."""
        if self._oasis is None:
            selector = OasisSelector(seed=self.config.seed)
            topo = self.topology(0)
            for prefix_index in sorted(set(clients) | set(replicas)):
                info = topo.prefixes[PrefixId(prefix_index)]
                selector.add_node(prefix_index, topo.pops[info.attachment_pop].location)
            self._oasis = selector
        return self._oasis


_SCENARIOS: dict[str, Scenario] = {}


def get_scenario(name: str = "default", **overrides) -> Scenario:
    """Process-cached scenario by preset name ("small" or "default").

    ``overrides`` customize the preset (creates a distinct cache entry).
    """
    base = {
        "small": ScenarioConfig.small,
        "default": ScenarioConfig.default,
    }.get(name)
    if base is None:
        raise ValueError(f"unknown scenario preset {name!r}")
    config = base()
    if overrides:
        config = replace(config, **overrides)
    key = repr(config)
    if key not in _SCENARIOS:
        _SCENARIOS[key] = Scenario(config)
    return _SCENARIOS[key]
