"""The path similarity metric of Figure 4 ([22, 29]).

Two paths are compared as the ratio of the intersection to the union of
their cluster (PoP) sets; ordering is ignored. 1.0 means the same set of
clusters, 0.0 means completely disjoint.
"""

from __future__ import annotations

from typing import Iterable


def path_similarity(path_a: Iterable[int], path_b: Iterable[int]) -> float:
    """Jaccard similarity of the node sets of two paths."""
    set_a, set_b = set(path_a), set(path_b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)
