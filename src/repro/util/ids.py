"""IPv4 address and prefix arithmetic.

The simulator allocates synthetic IPv4 space: every prefix is a ``/24``
carved out of ``10.0.0.0/8``-style integer space, identified by a
:class:`PrefixId`. Working in integers keeps hot paths fast; dotted-quad
formatting exists only for display and parsing of user input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError

#: Number of host addresses in each simulated prefix (a /24).
PREFIX_SIZE = 256
PREFIX_BITS = 24
_MAX_IP = 2**32 - 1


def parse_ip(text: str) -> int:
    """Parse dotted-quad ``text`` into a 32-bit integer.

    Raises :class:`ValueError` for malformed input.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(ip: int) -> str:
    """Format integer ``ip`` as a dotted quad."""
    if not 0 <= ip <= _MAX_IP:
        raise ValueError(f"IP integer out of range: {ip}")
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True)
class PrefixId:
    """A simulated /24 prefix, identified by its index in allocation order.

    ``base_ip`` is the first address in the prefix; all 256 addresses
    ``base_ip .. base_ip+255`` belong to it.
    """

    index: int

    @property
    def base_ip(self) -> int:
        base = self.index * PREFIX_SIZE
        if base > _MAX_IP:
            raise TopologyError(f"prefix index {self.index} exceeds IPv4 space")
        return base

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{format_ip(self.base_ip)}/{PREFIX_BITS}"


def prefix_of_ip(ip: int) -> PrefixId:
    """Return the /24 prefix containing ``ip``."""
    if not 0 <= ip <= _MAX_IP:
        raise ValueError(f"IP integer out of range: {ip}")
    return PrefixId(ip // PREFIX_SIZE)


def ip_in_prefix(ip: int, prefix: PrefixId) -> bool:
    """True if ``ip`` falls inside ``prefix``."""
    return ip // PREFIX_SIZE == prefix.index


def random_ip_in_prefix(prefix: PrefixId, rng: np.random.Generator) -> int:
    """Draw a uniform host address from ``prefix``.

    Avoids the network (``.0``) and broadcast (``.255``) addresses, matching
    the convention the traceroute simulator uses for probe targets.
    """
    offset = int(rng.integers(1, PREFIX_SIZE - 1))
    return prefix.base_ip + offset
