"""Deterministic random-stream management.

Every stochastic component in the simulator (topology generation, traceroute
noise, loss sampling, day-to-day route churn, ...) draws from its own named
stream derived from a single experiment seed. This keeps experiments
reproducible while ensuring that, e.g., enabling extra loss probes does not
perturb the topology that gets generated.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_hash(label: str) -> int:
    """Map a label to a stable 64-bit integer (Python's hash() is salted)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, label: str) -> np.random.Generator:
    """Return a generator for the stream named ``label`` under ``seed``.

    The same ``(seed, label)`` pair always yields an identical stream,
    independent of any other streams that were created.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, _stable_hash(label)]))


class SeedSequenceFactory:
    """Factory handing out independent named random streams.

    Example::

        seeds = SeedSequenceFactory(42)
        topo_rng = seeds.rng("topology")
        probe_rng = seeds.rng("measurement.loss")
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._issued: dict[str, np.random.Generator] = {}

    def rng(self, label: str) -> np.random.Generator:
        """Return the generator for ``label``, creating it on first use.

        Repeated calls with the same label return the *same* generator
        object, so sequential draws continue the stream rather than
        restarting it.
        """
        if label not in self._issued:
            self._issued[label] = derive_rng(self.seed, label)
        return self._issued[label]

    def fresh(self, label: str) -> np.random.Generator:
        """Return a brand-new generator for ``label``, restarting its stream."""
        rng = derive_rng(self.seed, label)
        self._issued[label] = rng
        return rng

    def child(self, label: str) -> "SeedSequenceFactory":
        """Derive a nested factory, e.g. one per simulated day."""
        return SeedSequenceFactory(_stable_hash(f"{self.seed}:{label}") % (2**31))

    def issued_labels(self) -> list[str]:
        """Labels of all streams created so far (for debugging/tests)."""
        return sorted(self._issued)
