"""Compressed-size accounting for atlas datasets.

Table 2 of the paper reports each atlas dataset's *compressed* on-disk size.
We reproduce that accounting by serializing each dataset to its binary wire
format and measuring ``zlib``-compressed bytes (the paper used gzip; both
are DEFLATE, so relative sizes are preserved).
"""

from __future__ import annotations

import zlib
from typing import Mapping


def compressed_size(payload: bytes, level: int = 6) -> int:
    """Size in bytes of ``payload`` after DEFLATE compression."""
    if not isinstance(payload, (bytes, bytearray)):
        raise TypeError("payload must be bytes")
    return len(zlib.compress(bytes(payload), level))


def compression_ratio(payload: bytes, level: int = 6) -> float:
    """Compressed/raw size ratio; 1.0 for empty payloads."""
    if len(payload) == 0:
        return 1.0
    return compressed_size(payload, level) / len(payload)


def compression_report(datasets: Mapping[str, bytes]) -> dict[str, dict[str, float]]:
    """Per-dataset raw size, compressed size, and ratio.

    ``datasets`` maps dataset name to its serialized bytes. The returned
    mapping adds a ``"total"`` row, mirroring Table 2's bottom line.
    """
    report: dict[str, dict[str, float]] = {}
    total_raw = 0
    total_compressed = 0
    for name, payload in datasets.items():
        raw = len(payload)
        comp = compressed_size(payload)
        total_raw += raw
        total_compressed += comp
        report[name] = {
            "raw_bytes": raw,
            "compressed_bytes": comp,
            "ratio": comp / raw if raw else 1.0,
        }
    report["total"] = {
        "raw_bytes": total_raw,
        "compressed_bytes": total_compressed,
        "ratio": total_compressed / total_raw if total_raw else 1.0,
    }
    return report


def megabytes(n_bytes: float) -> float:
    """Bytes -> MB (10^6, as used in the paper's '7MB' figures)."""
    return n_bytes / 1_000_000.0
