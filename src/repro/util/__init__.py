"""Shared utilities: deterministic RNG streams, IP/prefix codecs, statistics.

These helpers are deliberately dependency-light; everything above this layer
(topology, measurement, atlas, core) builds on them.
"""

from repro.util.rng import SeedSequenceFactory, derive_rng
from repro.util.ids import (
    PrefixId,
    format_ip,
    ip_in_prefix,
    parse_ip,
    prefix_of_ip,
    random_ip_in_prefix,
)
from repro.util.stats import (
    Cdf,
    fraction_at_most,
    median,
    percentile,
    summarize,
)
from repro.util.compression import compressed_size, compression_report

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "PrefixId",
    "format_ip",
    "ip_in_prefix",
    "parse_ip",
    "prefix_of_ip",
    "random_ip_in_prefix",
    "Cdf",
    "fraction_at_most",
    "median",
    "percentile",
    "summarize",
    "compressed_size",
    "compression_report",
]
