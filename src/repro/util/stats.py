"""Small statistics helpers shared by the evaluation harness and benchmarks.

The paper reports results almost exclusively as CDFs ("median error of
11ms", "80% of paths within 10% loss error"); :class:`Cdf` provides the
operations those plots need, in text form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


def median(values: Iterable[float]) -> float:
    """Median of ``values``; raises ValueError on empty input."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("median of empty sequence")
    return float(np.median(arr))


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q out of range: {q}")
    return float(np.percentile(arr, q))


def nearest_rank(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) over an unsorted
    sample window; 0.0 on empty input (absent telemetry encodes as
    zero on the wire).

    This is the single implementation behind every online p50/p99 the
    serving path reports — the obs histograms, the shard workers'
    handle times and the service front-end's request round-trips all
    route here, so the same sample window can never yield two
    different percentiles depending on which layer computed it.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def fraction_at_most(values: Iterable[float], threshold: float) -> float:
    """Fraction of ``values`` that are <= ``threshold`` (CDF evaluated at a point)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("fraction_at_most of empty sequence")
    return float(np.mean(arr <= threshold))


@dataclass
class Cdf:
    """An empirical CDF over a sample of floats."""

    samples: Sequence[float]
    _sorted: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(list(self.samples), dtype=float)
        if arr.size == 0:
            raise ValueError("Cdf requires at least one sample")
        self._sorted = np.sort(arr)

    def __len__(self) -> int:
        return int(self._sorted.size)

    def at(self, x: float) -> float:
        """P[X <= x]."""
        return float(np.searchsorted(self._sorted, x, side="right") / len(self))

    def quantile(self, p: float) -> float:
        """Inverse CDF: smallest x with P[X <= x] >= p."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"quantile p out of range: {p}")
        idx = min(len(self) - 1, max(0, int(np.ceil(p * len(self))) - 1))
        return float(self._sorted[idx])

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self, max_points: int = 50) -> list[tuple[float, float]]:
        """(x, P[X<=x]) pairs suitable for a text plot or export."""
        n = len(self)
        step = max(1, n // max_points)
        pts = [
            (float(self._sorted[i]), (i + 1) / n) for i in range(0, n, step)
        ]
        if pts[-1][1] != 1.0:
            pts.append((float(self._sorted[-1]), 1.0))
        return pts

    def render(self, label: str, unit: str = "", width: int = 48) -> str:
        """ASCII rendering of the CDF, one row per decile."""
        lines = [f"CDF: {label} (n={len(self)})"]
        for decile in range(1, 11):
            p = decile / 10
            x = self.quantile(p)
            bar = "#" * int(p * width)
            lines.append(f"  p{decile*10:<3} {x:>10.3f}{unit}  |{bar}")
        return "\n".join(lines)


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Return a dict of the summary stats used across the benchmarks."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("summarize of empty sequence")
    return {
        "n": float(arr.size),
        "mean": float(np.mean(arr)),
        "median": float(np.median(arr)),
        "p10": float(np.percentile(arr, 10)),
        "p90": float(np.percentile(arr, 90)),
        "min": float(np.min(arr)),
        "max": float(np.max(arr)),
    }


def histogram_bins(values: Iterable[float], bin_width: float, lo: float, hi: float) -> list[tuple[float, float]]:
    """Histogram of ``values`` with fixed-width bins over [lo, hi].

    Returns (bin_left_edge, fraction) pairs; used for Figure 4's similarity
    histogram with 0.05-wide bins.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("histogram of empty sequence")
    if bin_width <= 0 or hi <= lo:
        raise ValueError("invalid histogram bounds")
    nbins = int(round((hi - lo) / bin_width))
    counts, edges = np.histogram(arr, bins=nbins, range=(lo, hi))
    total = arr.size
    return [(float(edges[i]), counts[i] / total) for i in range(nbins)]
