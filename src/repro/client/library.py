"""The iNano client library (Section 5, client side).

Lifecycle::

    client = INanoClient(server, measurement_toolkit=sim, cluster_map=cmap)
    client.fetch()                  # swarm-download + decode the atlas
    client.measure()                # daily traceroutes -> FROM_SRC plane
    info = client.query(src, dst)   # local path/latency/loss prediction
    client.apply_daily_update()     # 1MB-ish delta instead of a re-fetch

The measurement toolkit is injected (in production it would run real
traceroutes; here it is the simulator), and the library uploads its
measurements back to the central server, as the paper describes.

Compiled state lives in an :class:`~repro.runtime.runtime.AtlasRuntime`:
``fetch()`` builds one over the decoded atlas (or attaches to a shared
runtime for co-located deployments, so N clients on a node share one
compiled graph and search cache), ``apply_daily_update()`` patches the
compiled arrays in place instead of triggering a recompile, and the
predictor is resolved through the runtime's
:class:`~repro.runtime.pool.PredictorPool` — clients without their own
FROM_SRC measurements share a single pooled predictor; a measuring
client gets a dedicated entry whose primary graph is its FROM_SRC plane
merged incrementally onto the shared base.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.atlas.builder import build_from_src_links
from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.serialization import decode_atlas
from repro.atlas.swarm import SwarmConfig, simulate_swarm
from repro.client.query import PathInfo
from repro.client.server import AtlasServer
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.errors import ClientError, NoPredictedRouteError, UnknownEndpointError
from repro.measurement.clustering import ClusterMap
from repro.measurement.traceroute import Traceroute, TracerouteSimulator
from repro.measurement.vantage import VantagePoint
from repro.runtime import AtlasRuntime
from repro.util.rng import derive_rng

#: process-unique client tokens, keying merged views and pool entries
_CLIENT_TOKENS = itertools.count(1)


@dataclass
class ClientConfig:
    """Client-side knobs (Section 5 defaults)."""

    #: "a few hundred prefixes, chosen at random" per day
    daily_measurement_prefixes: int = 200
    upload_measurements: bool = True
    use_swarm: bool = True
    predictor: PredictorConfig = field(default_factory=PredictorConfig.inano)
    seed: int = 0


class INanoClient:
    """An end-host running the iNano library."""

    def __init__(
        self,
        server: AtlasServer,
        vantage: VantagePoint | None = None,
        measurement_toolkit: TracerouteSimulator | None = None,
        cluster_map: ClusterMap | None = None,
        config: ClientConfig | None = None,
        shared_runtime: AtlasRuntime | None = None,
    ) -> None:
        self.server = server
        self.vantage = vantage
        self.toolkit = measurement_toolkit
        self.config = config or ClientConfig()
        self._base_cluster_map = cluster_map
        #: a co-located runtime to attach to instead of downloading —
        #: the paper's one-atlas-per-node deployment
        self._shared_runtime = shared_runtime
        self.runtime: AtlasRuntime | None = None
        self.cluster_map: ClusterMap | None = None
        self.from_src_links: dict[tuple[int, int], LinkRecord] = {}
        self.own_traces: list[Traceroute] = []
        self._pool_token = next(_CLIENT_TOKENS)
        self._from_src_rev = 0
        self.bytes_downloaded = 0

    @property
    def atlas(self) -> Atlas | None:
        """The current atlas (owned by the runtime; mutates on updates)."""
        return self.runtime.atlas if self.runtime is not None else None

    # -- lifecycle -------------------------------------------------------------

    def fetch(self, day: int | None = None) -> Atlas:
        """Obtain the atlas and build (or attach to) its runtime.

        With a ``shared_runtime`` the client attaches to the node's
        already-fetched compiled core — no download, no swarm, no
        private compile. Otherwise the payload is fetched (simulated
        swarm by default), decoded, and owned by a fresh runtime.
        """
        if self._shared_runtime is not None:
            if day is not None and day != self._shared_runtime.atlas.day:
                raise ClientError(
                    f"shared runtime holds day {self._shared_runtime.atlas.day}, "
                    f"cannot attach at day {day}"
                )
            self.runtime = self._shared_runtime
        else:
            payload = self.server.full_atlas_bytes(day)
            self.bytes_downloaded += len(payload)
            if self.config.use_swarm:
                # Account for swarm dynamics; the seed serves only a fraction.
                simulate_swarm(
                    SwarmConfig(
                        n_peers=16, file_bytes=len(payload), seed=self.config.seed
                    )
                )
            self.runtime = AtlasRuntime(decode_atlas(payload))
        self.cluster_map = (
            self._base_cluster_map.clone() if self._base_cluster_map else ClusterMap()
        )
        return self.runtime.atlas

    def measure(self, n_prefixes: int | None = None) -> int:
        """Issue the daily client traceroutes and fold them into FROM_SRC.

        Returns the number of traceroutes taken. Requires :meth:`fetch`
        first (the atlas supplies prefix targets and IP-to-AS mapping).
        """
        if self.runtime is None or self.cluster_map is None:
            raise ClientError("fetch() the atlas before measuring")
        if self.toolkit is None or self.vantage is None:
            raise ClientError("no measurement toolkit attached")
        atlas = self.runtime.atlas
        n = n_prefixes or self.config.daily_measurement_prefixes
        prefixes = sorted(atlas.prefix_to_cluster)
        prefixes = [p for p in prefixes if p != self.vantage.prefix_index]
        if not prefixes:
            raise ClientError("atlas contains no measurable prefixes")
        rng = derive_rng(self.config.seed, f"client.targets.{self.vantage.host_ip}")
        k = min(n, len(prefixes))
        picked = rng.choice(prefixes, size=k, replace=False)
        traces = [self.toolkit.trace_to_prefix(self.vantage, int(p)) for p in picked]
        self.own_traces.extend(traces)
        self.cluster_map.extend_with_client_traces(traces, atlas.prefix_to_as)
        self.from_src_links = build_from_src_links(self.own_traces, self.cluster_map)
        # The pool re-merges this client's FROM_SRC view on next access.
        self._from_src_rev += 1
        if self.config.upload_measurements:
            self.server.upload_traceroutes(traces)
        return len(traces)

    def apply_daily_update(self) -> int:
        """Fetch and apply the next day's delta; returns its wire size.

        The runtime patches its compiled arrays in place — no recompile,
        and the next query pays only the (version-keyed) cold-search
        cost for its destination.
        """
        if self.runtime is None:
            raise ClientError("fetch() the atlas before updating")
        delta = self.server.delta_for(self.runtime.atlas.day + 1)
        from repro.atlas.delta import encode_delta

        size = len(encode_delta(delta))
        self.bytes_downloaded += size
        self.runtime.apply_delta(delta)
        return size

    # -- queries -----------------------------------------------------------------

    @property
    def predictor(self) -> INanoPredictor:
        if self.runtime is None:
            raise ClientError("fetch() the atlas before querying")
        extra = self.cluster_map.cluster_asn if self.cluster_map else {}
        has_from_src = bool(self.from_src_links)
        return self.runtime.pool.predictor(
            self.config.predictor,
            client_key=self._pool_token if has_from_src else None,
            from_src_links=self.from_src_links or None,
            from_src_prefixes=(
                {self.vantage.prefix_index} if self.vantage else None
            ),
            client_cluster_as=extra,
            from_src_rev=self._from_src_rev if has_from_src else 0,
        )

    def query(self, src_prefix_index: int, dst_prefix_index: int) -> PathInfo:
        """Predict both directions between two arbitrary prefixes.

        Raises :class:`UnknownEndpointError` / :class:`NoPredictedRouteError`
        when prediction is impossible; see :meth:`query_or_none`.
        """
        predictor = self.predictor
        forward = predictor.predict(src_prefix_index, dst_prefix_index)
        reverse = predictor.predict(dst_prefix_index, src_prefix_index)
        return PathInfo(
            src_prefix_index=src_prefix_index,
            dst_prefix_index=dst_prefix_index,
            forward=forward,
            reverse=reverse,
            atlas_day=self.runtime.atlas.day,
        )

    def query_or_none(
        self, src_prefix_index: int, dst_prefix_index: int
    ) -> PathInfo | None:
        try:
            return self.query(src_prefix_index, dst_prefix_index)
        except (UnknownEndpointError, NoPredictedRouteError):
            return None

    def query_batch(
        self, pairs: list[tuple[int, int]]
    ) -> list[PathInfo | None]:
        """Batched query interface (arbitrary batch sizes, Section 5).

        Both directions go through the predictor's destination-grouped
        batch path, so pairs sharing an endpoint reuse one backtracking
        search instead of raising/catching per pair.
        """
        from repro.client.query import combine_batches

        predictor = self.predictor
        return combine_batches(
            pairs, predictor.predict_batch, self.runtime.atlas.day
        )

    def close(self) -> None:
        """Release this client's merged view and pooled predictors."""
        if self.runtime is not None:
            self.runtime.release(self._pool_token)
