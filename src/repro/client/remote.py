"""Remote queries: one atlas per subnet (the paper's stated future work).

Section 5: "In future work, we plan to support remote queries so that
only one local host need download the atlas." This module implements that
delegation model: a :class:`QueryAgent` wraps a fully-fetched
:class:`~repro.client.library.INanoClient` and serves query requests on
behalf of *other* hosts in its subnet, like a local DNS resolver. Remote
callers pay one simulated round trip to the agent instead of holding the
atlas themselves; the agent answers from its local predictor and keeps
per-caller accounting so deployments can see who should be promoted to a
full client.

The agent's compiled state is the client's
:class:`~repro.runtime.runtime.AtlasRuntime`: predictors come from the
runtime's shared pool, daily updates patch the compiled arrays in place
underneath the agent (it keeps serving, with stale search-cache keys
retired by the version bump), and :meth:`QueryAgent.co_located` builds
an agent directly over a server's own runtime — no second download, no
second compile, one shared search cache with every other co-located
consumer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.client.library import INanoClient
from repro.client.query import PathInfo
from repro.errors import ClientError


@dataclass(frozen=True, slots=True)
class RemoteQueryResult:
    """A remote answer: the payload plus the delegation round-trip cost."""

    info: PathInfo | None
    agent_rtt_ms: float


@dataclass
class QueryAgent:
    """Serves path queries to nearby hosts from one locally-held atlas."""

    client: INanoClient
    #: simulated one-way latency between a caller and the agent (local
    #: subnet scale); callers pay twice this per query
    local_hop_ms: float = 0.5
    max_batch: int = 1024
    _queries_served: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.client.atlas is None:
            raise ClientError("agent requires a client that already fetched the atlas")

    @classmethod
    def co_located(cls, server, local_hop_ms: float = 0.5, **client_kwargs) -> "QueryAgent":
        """An agent sharing the *server's* runtime (one compiled graph,
        one search cache with every other server-side consumer)."""
        client = INanoClient(server, shared_runtime=server.runtime(), **client_kwargs)
        client.fetch()
        return cls(client=client, local_hop_ms=local_hop_ms)

    @property
    def runtime(self):
        """The shared runtime the agent answers from."""
        return self.client.runtime

    @property
    def queries_served(self) -> dict[int, int]:
        """Per-caller query counts (caller prefix -> queries)."""
        return dict(self._queries_served)

    def query_for(
        self, caller_prefix_index: int, src_prefix_index: int, dst_prefix_index: int
    ) -> RemoteQueryResult:
        """Answer one query on behalf of ``caller_prefix_index``."""
        self._queries_served[caller_prefix_index] = (
            self._queries_served.get(caller_prefix_index, 0) + 1
        )
        info = self.client.query_or_none(src_prefix_index, dst_prefix_index)
        return RemoteQueryResult(info=info, agent_rtt_ms=2 * self.local_hop_ms)

    def query_batch_for(
        self,
        caller_prefix_index: int,
        pairs: list[tuple[int, int]],
    ) -> list[RemoteQueryResult]:
        """Batched remote queries; one round trip amortized over the batch.

        The whole batch costs a single agent round trip (the transport is
        one request/response), so per-pair delegation cost shrinks with
        batch size — the reason the paper suggests this deployment mode.
        """
        if len(pairs) > self.max_batch:
            raise ClientError(
                f"batch of {len(pairs)} exceeds agent limit {self.max_batch}"
            )
        self._queries_served[caller_prefix_index] = (
            self._queries_served.get(caller_prefix_index, 0) + len(pairs)
        )
        rtt = 2 * self.local_hop_ms
        infos = self.client.query_batch(list(pairs))
        return [RemoteQueryResult(info=info, agent_rtt_ms=rtt) for info in infos]

    def heavy_callers(self, threshold: int = 1000) -> list[int]:
        """Callers busy enough that running their own client would pay off."""
        return sorted(
            caller
            for caller, count in self._queries_served.items()
            if count >= threshold
        )
