"""The central iNano server.

Holds recent days' encoded atlases, computes the daily deltas clients
fetch, and accepts measurement uploads from client libraries (which the
next day's atlas build may incorporate). Also reports the bandwidth
accounting used by the swarm-distribution benchmark.

Two runtime-era responsibilities live here as well:

* **Retention** — the seed server kept every day's ``Atlas`` plus its
  encoded bytes forever. Published days now age out of the full-atlas
  store after ``retention_days``, except monthly anchors (day
  ``% MONTHLY_REFRESH_DAYS == 0``), which stay as re-sync points; the
  (small) delta chain is kept in full so lagging clients can still
  roll forward. Evicted payload bytes are accounted in
  ``bytes_evicted`` alongside the ``bytes_served`` bookkeeping.
* **Server-side queries** — :meth:`runtime` owns a private
  :class:`~repro.runtime.runtime.AtlasRuntime` over the latest
  published day, advanced in place through the server's own deltas
  (the same patch path clients use). :meth:`predict` /
  :meth:`predict_batch` answer through its shared predictor pool, so
  any number of server-side callers (and co-located query agents)
  share one compiled graph and one search cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.delta import (
    MONTHLY_REFRESH_DAYS,
    AtlasDelta,
    compute_delta,
    encode_delta,
)
from repro.atlas.model import Atlas
from repro.atlas.serialization import decode_atlas, encode_atlas
from repro.errors import AtlasError
from repro.measurement.traceroute import Traceroute


@dataclass
class AtlasServer:
    """Central coordinator: publishes atlases, deltas, and seeds the swarm."""

    #: full atlases kept this many recent days (monthly anchors are
    #: always retained); None disables eviction
    retention_days: int | None = 7
    _atlases: dict[int, Atlas] = field(default_factory=dict)
    _encoded: dict[int, bytes] = field(default_factory=dict)
    _deltas: dict[int, AtlasDelta] = field(default_factory=dict)
    _uploaded_traces: list[Traceroute] = field(default_factory=list)
    _runtime: object = field(default=None, repr=False)
    bytes_served: int = 0
    bytes_evicted: int = 0

    def publish(self, atlas: Atlas) -> None:
        """Publish a new day's atlas; precomputes the delta from the prior day."""
        day = atlas.day
        if day in self._atlases:
            raise AtlasError(f"atlas for day {day} already published")
        self._atlases[day] = atlas
        self._encoded[day] = encode_atlas(atlas)
        previous = self._atlases.get(day - 1)
        if previous is not None:
            self._deltas[day] = compute_delta(previous, atlas)
        self._evict_stale()

    def latest_day(self) -> int:
        if not self._atlases:
            raise AtlasError("no atlas published yet")
        return max(self._atlases)

    def retained_days(self) -> list[int]:
        """Days whose full atlas is still servable, ascending."""
        return sorted(self._atlases)

    def _evict_stale(self) -> None:
        """Age full atlases out of the window; keep monthly anchors."""
        if self.retention_days is None:
            return
        cutoff = max(self._atlases) - self.retention_days
        for day in [d for d in self._atlases if d < cutoff]:
            if day % MONTHLY_REFRESH_DAYS == 0:
                continue
            self.bytes_evicted += len(self._encoded[day])
            del self._atlases[day]
            del self._encoded[day]

    def full_atlas_bytes(self, day: int | None = None) -> bytes:
        """Serve a full encoded atlas (seed copy for the swarm)."""
        day = self.latest_day() if day is None else day
        try:
            payload = self._encoded[day]
        except KeyError:
            raise AtlasError(f"no atlas for day {day}") from None
        self.bytes_served += len(payload)
        return payload

    def delta_for(self, new_day: int) -> AtlasDelta:
        """The delta that upgrades day ``new_day - 1`` to ``new_day``."""
        try:
            delta = self._deltas[new_day]
        except KeyError:
            raise AtlasError(f"no delta to day {new_day}") from None
        self.bytes_served += len(encode_delta(delta))
        return delta

    def atlas_object(self, day: int | None = None) -> Atlas:
        """In-process access to the decoded atlas (tests, local clients)."""
        day = self.latest_day() if day is None else day
        try:
            return self._atlases[day]
        except KeyError:
            raise AtlasError(f"no atlas for day {day}") from None

    # -- server-side queries -------------------------------------------------

    def runtime(self):
        """The server's own :class:`AtlasRuntime`, current to the latest
        published day.

        Built lazily from the latest encoded payload (a private copy —
        the runtime mutates its atlas), then rolled forward in place
        through the server's own delta chain on later publishes; only a
        gap in the chain forces a rebuild.
        """
        from repro.runtime import AtlasRuntime

        latest = self.latest_day()
        runtime = self._runtime
        if runtime is None:
            runtime = AtlasRuntime(decode_atlas(self._encoded[latest]))
            self._runtime = runtime
            return runtime
        while runtime.atlas.day < latest:
            delta = self._deltas.get(runtime.atlas.day + 1)
            if delta is None:
                # Gap in the delta chain: re-seed *in place* so every
                # co-located consumer holding this runtime follows.
                runtime.reset(decode_atlas(self._encoded[latest]))
                break
            runtime.apply_delta(delta)
        return runtime

    def serve(self, n_shards: int = 4, **service_kwargs):
        """Scale-out serving: a sharded multi-process
        :class:`~repro.serve.service.PredictionService` over the latest
        published atlas.

        The in-process :meth:`predict` / :meth:`predict_batch` path
        stays for co-located consumers; ``serve()`` is the default
        answer path once query traffic outgrows one core. The service
        starts at the latest day's payload and rolls forward through
        this server's delta chain with
        :meth:`~repro.serve.service.PredictionService.sync_from` after
        later publishes. Close it when done (context manager).
        """
        from repro.serve import PredictionService

        payload = self._encoded[self.latest_day()]
        return PredictionService(payload, n_shards=n_shards, **service_kwargs)

    def predict(self, src_prefix_index: int, dst_prefix_index: int, config=None):
        """One-way prediction from the shared server-side predictor."""
        return self.runtime().pool.predictor(config).predict_or_none(
            src_prefix_index, dst_prefix_index
        )

    def predict_batch(self, pairs: list[tuple[int, int]], config=None):
        """Batched predictions from the shared server-side predictor."""
        return self.runtime().pool.predictor(config).predict_batch(list(pairs))

    # -- client uploads ------------------------------------------------------

    def upload_traceroutes(self, traces: list[Traceroute]) -> int:
        """Accept client-contributed measurements (Section 5).

        Returns the number of traces accepted. Deduplicates exact repeats;
        validation of buggy/malicious uploads is future work in the paper,
        and here.
        """
        existing = {
            (t.src_ip, t.dst_ip, t.day, len(t.hops)) for t in self._uploaded_traces
        }
        accepted = 0
        for trace in traces:
            key = (trace.src_ip, trace.dst_ip, trace.day, len(trace.hops))
            if key not in existing:
                self._uploaded_traces.append(trace)
                existing.add(key)
                accepted += 1
        return accepted

    @property
    def uploaded_traceroutes(self) -> list[Traceroute]:
        return list(self._uploaded_traces)
