"""The central iNano server.

Holds one encoded atlas per day, computes the daily deltas clients fetch,
and accepts measurement uploads from client libraries (which the next
day's atlas build may incorporate). Also reports the bandwidth accounting
used by the swarm-distribution benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.delta import AtlasDelta, compute_delta, encode_delta
from repro.atlas.model import Atlas
from repro.atlas.serialization import encode_atlas
from repro.errors import AtlasError
from repro.measurement.traceroute import Traceroute


@dataclass
class AtlasServer:
    """Central coordinator: publishes atlases, deltas, and seeds the swarm."""

    _atlases: dict[int, Atlas] = field(default_factory=dict)
    _encoded: dict[int, bytes] = field(default_factory=dict)
    _deltas: dict[int, AtlasDelta] = field(default_factory=dict)
    _uploaded_traces: list[Traceroute] = field(default_factory=list)
    bytes_served: int = 0

    def publish(self, atlas: Atlas) -> None:
        """Publish a new day's atlas; precomputes the delta from the prior day."""
        day = atlas.day
        if day in self._atlases:
            raise AtlasError(f"atlas for day {day} already published")
        self._atlases[day] = atlas
        self._encoded[day] = encode_atlas(atlas)
        previous = self._atlases.get(day - 1)
        if previous is not None:
            self._deltas[day] = compute_delta(previous, atlas)

    def latest_day(self) -> int:
        if not self._atlases:
            raise AtlasError("no atlas published yet")
        return max(self._atlases)

    def full_atlas_bytes(self, day: int | None = None) -> bytes:
        """Serve a full encoded atlas (seed copy for the swarm)."""
        day = self.latest_day() if day is None else day
        try:
            payload = self._encoded[day]
        except KeyError:
            raise AtlasError(f"no atlas for day {day}") from None
        self.bytes_served += len(payload)
        return payload

    def delta_for(self, new_day: int) -> AtlasDelta:
        """The delta that upgrades day ``new_day - 1`` to ``new_day``."""
        try:
            delta = self._deltas[new_day]
        except KeyError:
            raise AtlasError(f"no delta to day {new_day}") from None
        self.bytes_served += len(encode_delta(delta))
        return delta

    def atlas_object(self, day: int | None = None) -> Atlas:
        """In-process access to the decoded atlas (tests, local clients)."""
        day = self.latest_day() if day is None else day
        try:
            return self._atlases[day]
        except KeyError:
            raise AtlasError(f"no atlas for day {day}") from None

    # -- client uploads ------------------------------------------------------

    def upload_traceroutes(self, traces: list[Traceroute]) -> int:
        """Accept client-contributed measurements (Section 5).

        Returns the number of traces accepted. Deduplicates exact repeats;
        validation of buggy/malicious uploads is future work in the paper,
        and here.
        """
        existing = {
            (t.src_ip, t.dst_ip, t.day, len(t.hops)) for t in self._uploaded_traces
        }
        accepted = 0
        for trace in traces:
            key = (trace.src_ip, trace.dst_ip, trace.day, len(trace.hops))
            if key not in existing:
                self._uploaded_traces.append(trace)
                existing.add(key)
                accepted += 1
        return accepted

    @property
    def uploaded_traceroutes(self) -> list[Traceroute]:
        return list(self._uploaded_traces)
