"""The iNano client library and central server (Section 5).

`repro.client.server` is the single centralized component: it aggregates
measurements into atlases, encodes them, computes daily deltas, and seeds
the swarm. `repro.client.library` is what a P2P application embeds: it
fetches the atlas (by swarm), augments it with the host's own traceroutes
(FROM_SRC), serves path queries locally, and applies daily updates.
Both resolve their compiled query state through `repro.runtime`: one
shared `AtlasRuntime` per atlas lineage, patched in place by daily
deltas, with predictors pooled across server, remote-agent and
co-located client consumers. `INanoRemoteClient` (the
`repro.net.client.NetworkClient`) is the off-node variant: it reaches
a `repro.net.gateway.NetworkGateway` over TCP or a unix socket and
either delegates queries over the wire or bootstraps a full atlas and
applies pushed deltas locally.
"""

from repro.client.server import AtlasServer
from repro.client.library import INanoClient, ClientConfig
from repro.client.query import PathInfo
from repro.client.remote import QueryAgent, RemoteQueryResult

__all__ = [
    "AtlasServer",
    "INanoClient",
    "ClientConfig",
    "PathInfo",
    "QueryAgent",
    "RemoteQueryResult",
    "INanoRemoteClient",
]


def __getattr__(name: str):
    # Lazy: repro.net.client imports from this package, so a direct
    # import here would cycle when repro.net loads first.
    if name == "INanoRemoteClient":
        from repro.net.client import NetworkClient

        return NetworkClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
