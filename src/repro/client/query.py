"""Query results returned by the client library."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.mos import mos_score
from repro.core.predictor import PredictedPath
from repro.core.tcp import download_time_seconds, pftk_throughput_bps


@dataclass(frozen=True, slots=True)
class PathInfo:
    """Everything iNano predicts about a (src, dst) pair.

    This is the library's query-interface payload: the PoP-level (cluster)
    forward/reverse paths, the AS path, and the composed performance
    metrics applications feed into their own models.
    """

    src_prefix_index: int
    dst_prefix_index: int
    forward: PredictedPath
    reverse: PredictedPath
    #: day of the atlas lineage that answered this query (runtime
    #: provenance; None when the payload was assembled outside a runtime)
    atlas_day: int | None = None

    @classmethod
    def combine(
        cls,
        src_prefix_index: int,
        dst_prefix_index: int,
        forward: PredictedPath | None,
        reverse: PredictedPath | None,
        atlas_day: int | None = None,
    ) -> "PathInfo | None":
        """Pair the two one-way predictions, or None if either is missing.

        The batched query path resolves forward and reverse directions in
        bulk and zips them back together here.
        """
        if forward is None or reverse is None:
            return None
        return cls(
            src_prefix_index=src_prefix_index,
            dst_prefix_index=dst_prefix_index,
            forward=forward,
            reverse=reverse,
            atlas_day=atlas_day,
        )

    @property
    def rtt_ms(self) -> float:
        return self.forward.latency_ms + self.reverse.latency_ms

    @property
    def loss_forward(self) -> float:
        return self.forward.loss

    @property
    def loss_round_trip(self) -> float:
        return 1.0 - (1.0 - self.forward.loss) * (1.0 - self.reverse.loss)

    @property
    def as_path(self) -> tuple[int, ...]:
        return self.forward.as_path

    def tcp_throughput_bps(self) -> float:
        """PFTK estimate for a bulk transfer over this path."""
        return pftk_throughput_bps(self.rtt_ms / 1000.0, self.loss_forward)

    def download_time_seconds(self, size_bytes: int) -> float:
        """Predicted transfer time for a file of ``size_bytes``."""
        return download_time_seconds(size_bytes, self.rtt_ms / 1000.0, self.loss_forward)

    def mos(self) -> float:
        """Predicted VoIP quality over this path."""
        return mos_score(self.rtt_ms, self.loss_round_trip)


def combine_batches(pairs, predict_batch, atlas_day) -> list["PathInfo | None"]:
    """Run both directions of ``pairs`` through a batched one-way
    predictor and zip them into :class:`PathInfo`\\ s.

    The one batching contract both the client library and the sharded
    service must share (their results are asserted bit-for-bit equal):
    only pairs with a forward path get a reverse query — a missing
    forward already makes the result None — and the reverse results
    zip back positionally.
    """
    pairs = list(pairs)
    forward = predict_batch(pairs)
    reverse = iter(
        predict_batch(
            [(d, s) for (s, d), fwd in zip(pairs, forward) if fwd is not None]
        )
    )
    return [
        None
        if fwd is None
        else PathInfo.combine(s, d, fwd, next(reverse), atlas_day=atlas_day)
        for (s, d), fwd in zip(pairs, forward)
    ]
