"""Unified observability: one metrics registry + request tracing.

Every tier of the system — search kernel, predictor pool, shard
workers, the sharded service front-end, the network gateway and its
relay tiers — used to keep telemetry in its own dialect (``stats``
dicts, ``kernel_stats()`` counters, the heat ``Tracker``, per-field
STATS wire frames). :mod:`repro.obs` is the one substrate they all
share now:

* :mod:`repro.obs.registry` — process-local counters, gauges, timers
  and fixed-bucket histograms under hierarchical dotted names
  (``kernel.search_us``, ``serve.shard3.queue_depth``,
  ``net.gateway.push_drain_slowest_us``), with a snapshot/merge API so
  shard workers export deltas over the existing ``stats`` pipe op and
  the front-end folds them into one fleet-wide view, plus a
  Prometheus-text exposition (``registry.expose_text()``).
* :mod:`repro.obs.trace` — compact end-to-end request tracing: a
  ``(trace_id, span_id)`` context minted by the client, carried on the
  INWP wire (optional TRACE field behind ``FLAG_TRACE``) and through
  shard IPC, with spans recorded at gateway decode/admission/dispatch,
  service routing (pinned vs promoted replica), worker batch handling
  and the kernel search itself.
* :mod:`repro.obs.dashboard` — a ``repro-top`` style text dashboard
  over any snapshot.

Existing surfaces (``gateway.stats``, ``service.load_stats()``, the
FLAG_STATS wire frames, ``heat.snapshot()``) are thin views over this
registry — one source of truth, no counter can drift from its view.
"""

from repro.obs.registry import (
    DEFAULT_US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    Timer,
    histogram_percentile,
    prefix_snapshot,
)
from repro.obs.trace import (
    Span,
    TraceCollector,
    Tracer,
    build_tree,
    render_tree,
)

__all__ = [
    "DEFAULT_US_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "Timer",
    "histogram_percentile",
    "prefix_snapshot",
    "Span",
    "TraceCollector",
    "Tracer",
    "build_tree",
    "render_tree",
]
