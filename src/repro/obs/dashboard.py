"""``repro-top``: a terminal/text dashboard over a metrics snapshot.

:func:`render` takes any snapshot (one registry's, or the fleet-wide
merge the service front-end assembles) and draws a grouped, aligned
text board — the operator's view of the same numbers the autoscaler
and the Prometheus exposition read. No curses, no refresh loop of its
own: callers re-render on their own cadence (the example's watch loop,
a test's single shot).
"""

from __future__ import annotations

from repro.obs.registry import histogram_percentile

__all__ = ["render"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) >= 1 else f"{value:.3f}"
    return f"{value:,}"


def render(snapshot: dict, title: str = "repro-top", width: int = 72) -> str:
    """One text frame: metrics grouped by their first dotted name
    component, histograms summarized as count/p50/p99 (bucket-derived,
    so a merged fleet snapshot renders the same way a local one does).
    """
    groups: dict[str, list[tuple[str, object]]] = {}
    for name in sorted(snapshot):
        head, _, rest = name.partition(".")
        groups.setdefault(head, []).append((rest or head, snapshot[name]))
    bar = "=" * width
    lines = [bar, f" {title}", bar]
    for head in sorted(groups):
        lines.append(f"[{head}]")
        for key, value in groups[head]:
            if isinstance(value, dict) and "counts" in value:
                p50 = histogram_percentile(value, 0.50)
                p99 = histogram_percentile(value, 0.99)
                lines.append(
                    f"  {key:<40} n={value['count']:<8} "
                    f"p50={p50:,.1f} p99={p99:,.1f}"
                )
            else:
                lines.append(f"  {key:<40} {_fmt(value)}")
    lines.append(bar)
    return "\n".join(lines)
