"""The process-local metrics registry: counters, gauges, timers and
fixed-bucket histograms under hierarchical dotted names.

Design rules, shared with :mod:`repro.serve.heat` (whose ``Tracker``
is literally this registry):

* **Logical-clock friendly.** Nothing here reads a wall clock on its
  own; counters and gauges advance only when told to, and histograms
  observe whatever the caller measured. The only wall-clock use is the
  explicit :class:`Timer` context manager, same as the heat layer's.
* **Lock-free snapshot/merge.** All mutation is single-small-op Python
  (one ``+=``, one ``deque.append``) under the GIL, and
  :meth:`MetricsRegistry.snapshot` reads plain attributes — no locks
  anywhere, so a shard worker can export its registry over the
  existing ``stats`` pipe op and the front-end merges the plain-dict
  snapshots with :meth:`MetricsRegistry.merge_snapshots` (an
  associative fold: ``merge(merge(a, b), c) == merge(a, merge(b, c))``).
* **Exact local percentiles, mergeable remote ones.** A histogram
  keeps fixed bucket counts (mergeable across processes) *and* a
  bounded raw-sample window, so in-process reads get the exact
  nearest-rank p50/p99 (:func:`repro.util.stats.nearest_rank` — the
  one percentile implementation repo-wide) while merged fleet
  snapshots interpolate within buckets
  (:func:`histogram_percentile`).

:meth:`MetricsRegistry.view` returns a :class:`StatsView` — a
``MutableMapping`` facade over registry gauges that lets the existing
``stats["requests"] += 1`` call sites keep their shape while the
registry becomes the single source of truth underneath.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import MutableMapping

from repro.util.stats import nearest_rank

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "DEFAULT_US_BUCKETS",
    "histogram_percentile",
    "prefix_snapshot",
]


class Counter:
    """A named monotonically-increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increase(self, amount: int = 1) -> None:
        self.value += amount

    def get(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that can move both ways (queue depths, open
    connections, last-broadcast timings)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value=0) -> None:
        self.name = name
        self.value = value

    def set(self, value) -> None:
        self.value = value

    def add(self, amount) -> None:
        self.value += amount

    def get(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Timer:
    """A named accumulator of elapsed seconds."""

    __slots__ = ("name", "seconds", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.seconds = 0.0
        self._started: float | None = None

    def add(self, seconds: float) -> None:
        self.seconds += float(seconds)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self._started = None

    def get(self) -> float:
        return self.seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timer({self.name}={self.seconds:.6f}s)"


#: default bucket upper bounds for microsecond-scale latencies
#: (roughly 1-2-5 per decade, 1us .. 2.5s; one overflow bucket above)
DEFAULT_US_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0, 1_000_000.0, 2_500_000.0,
)

#: raw samples a histogram retains for exact in-process percentiles
#: (matches the 512-sample deques the serving layers used before)
DEFAULT_WINDOW = 512


class Histogram:
    """Fixed upper-bound buckets plus a bounded raw-sample window.

    ``observe(v)`` counts ``v`` into the first bucket whose bound is
    ``>= v`` (one extra overflow bucket catches the tail) and appends
    it to the window. :meth:`percentile` is *exact* over the window;
    :meth:`state` exports the mergeable bucket counts (count / sum /
    min / max, never the window), and merged states answer percentiles
    through :func:`histogram_percentile` at bucket resolution.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "vmin", "vmax", "window")

    def __init__(
        self,
        name: str,
        bounds: tuple = DEFAULT_US_BUCKETS,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        lo, hi = 0, len(self.bounds)  # bisect over the bounds
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        self.window.append(value)

    def percentile(self, q: float) -> float:
        """Exact nearest-rank percentile over the retained window
        (the most recent ``window`` observations)."""
        return nearest_rank(self.window, q)

    def get(self) -> dict:
        return self.state()

    def state(self) -> dict:
        """The mergeable export: bucket counts only, no raw window —
        which is what keeps :meth:`MetricsRegistry.merge_snapshots`
        associative (a bounded window concatenation would not be)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "bounds": self.bounds,
            "counts": list(self.counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: n={self.count})"


def _is_histogram_state(value) -> bool:
    return isinstance(value, dict) and "counts" in value and "bounds" in value


def histogram_percentile(state: dict, q: float) -> float:
    """Nearest-rank percentile from a (possibly merged) histogram
    *state*, interpolated linearly inside the landing bucket. Exact
    window data is process-local; this is the fleet-wide answer."""
    total = state["count"]
    if not total:
        return 0.0
    rank = min(total - 1, max(0, int(q * total)))
    bounds = state["bounds"]
    vmin = state["min"] if state["min"] is not None else 0.0
    vmax = state["max"] if state["max"] is not None else bounds[-1]
    cum = 0
    lower = vmin
    for i, n in enumerate(state["counts"]):
        upper = bounds[i] if i < len(bounds) else vmax
        if n and rank < cum + n:
            upper = min(upper, vmax)
            lower = max(min(lower, upper), vmin)
            frac = (rank - cum + 0.5) / n
            return lower + (upper - lower) * frac
        cum += n
        lower = upper
    return vmax


def prefix_snapshot(snapshot: dict, prefix: str) -> dict:
    """Re-key a snapshot under ``prefix.`` — how a worker's registry
    lands in the fleet view as ``serve.shard3.<name>``."""
    return {f"{prefix}.{name}": value for name, value in snapshot.items()}


class MetricsRegistry:
    """Named metrics with one-shot snapshots; ``get_*`` returns the
    same object for the same name, so independent components share
    tallies without passing them around explicitly (the heat layer's
    ``Tracker`` is an alias of this class)."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = kind(name)
            return metric
        if not isinstance(metric, kind):
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def get_counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def get_gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def get_timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def get_histogram(
        self,
        name: str,
        bounds: tuple = DEFAULT_US_BUCKETS,
        window: int = DEFAULT_WINDOW,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, bounds, window)
            return metric
        if not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} is a {type(metric).__name__}, "
                "not a Histogram"
            )
        return metric

    def view(self, prefix: str, keys: tuple = ()) -> "StatsView":
        """A ``MutableMapping`` facade over gauges named
        ``prefix.<key>`` — the adapter that lets ``gateway.stats`` /
        ``service.stats`` keep their dict shape while this registry
        holds the only copy of every number."""
        return StatsView(self, prefix, keys)

    def snapshot(self) -> dict:
        """All metrics as one flat ``name -> value`` dict (histograms
        export their mergeable :meth:`Histogram.state`)."""
        out: dict = {}
        for name, metric in self._metrics.items():
            out[name] = metric.get()
        return out

    @staticmethod
    def merge_snapshots(*snapshots: dict) -> dict:
        """Associative fold of snapshots: numbers add, histogram
        states merge bucket-wise (same bounds required). The shard
        front-end uses this to fold every worker's exported registry
        into one fleet-wide view."""
        out: dict = {}
        for snap in snapshots:
            for name, value in snap.items():
                cur = out.get(name)
                if cur is None:
                    if _is_histogram_state(value):
                        value = dict(value, counts=list(value["counts"]))
                    out[name] = value
                elif _is_histogram_state(value):
                    if tuple(cur["bounds"]) != tuple(value["bounds"]):
                        raise ValueError(
                            f"cannot merge histogram {name!r}: "
                            "bucket bounds differ"
                        )
                    cur["count"] += value["count"]
                    cur["sum"] += value["sum"]
                    for side, pick in (("min", min), ("max", max)):
                        a, b = cur[side], value[side]
                        cur[side] = (
                            b if a is None else a if b is None else pick(a, b)
                        )
                    cur["counts"] = [
                        a + b for a, b in zip(cur["counts"], value["counts"])
                    ]
                else:
                    out[name] = cur + value
        return out

    def expose_text(self, snapshot: dict | None = None) -> str:
        """Prometheus text exposition of ``snapshot`` (default: this
        registry's own). Dots become underscores; histograms emit the
        standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` series."""
        if snapshot is None:
            snapshot = self.snapshot()
        lines: list[str] = []
        for name, value in snapshot.items():
            flat = name.replace(".", "_").replace("-", "_")
            if _is_histogram_state(value):
                lines.append(f"# TYPE {flat} histogram")
                cum = 0
                for i, n in enumerate(value["counts"]):
                    cum += n
                    le = (
                        f"{value['bounds'][i]:g}"
                        if i < len(value["bounds"])
                        else "+Inf"
                    )
                    lines.append(f'{flat}_bucket{{le="{le}"}} {cum}')
                lines.append(f"{flat}_sum {value['sum']:g}")
                lines.append(f"{flat}_count {value['count']}")
            else:
                kind = self._metrics.get(name)
                mtype = "counter" if isinstance(kind, Counter) else "gauge"
                lines.append(f"# TYPE {flat} {mtype}")
                lines.append(f"{flat} {value:g}")
        return "\n".join(lines) + "\n"


class StatsView(MutableMapping):
    """Dict-shaped window onto registry gauges.

    ``view["requests"] += 1`` reads and writes the gauge named
    ``<prefix>.requests``; new keys create gauges on first assignment
    (the relay tier adds ``upstream_lost`` to an inherited view), and
    ``dict(view)`` / iteration walk the declared-then-discovered keys
    in order, so test code that copies the stats dict keeps working.
    Deleting keys is not supported — telemetry only grows.

    The view sits on the gateway's per-frame hot path, so each key's
    gauge is resolved once and cached: a read or write is one dict
    lookup plus one attribute access — the same order of work as the
    plain dicts these views replaced (the bench floor gates hold the
    difference to noise).
    """

    __slots__ = ("_registry", "_prefix", "_gauges")

    def __init__(self, registry: MetricsRegistry, prefix: str, keys=()) -> None:
        self._registry = registry
        self._prefix = prefix
        #: key -> Gauge, in declared-then-discovered order
        self._gauges: dict[str, Gauge] = {}
        for key in keys:
            self._gauges[key] = registry.get_gauge(f"{prefix}.{key}")

    def __getitem__(self, key: str):
        gauge = self._gauges.get(key)
        if gauge is None:
            raise KeyError(key)
        return gauge.value

    def __setitem__(self, key: str, value) -> None:
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = self._registry.get_gauge(
                f"{self._prefix}.{key}"
            )
        gauge.value = value

    def __delitem__(self, key: str) -> None:
        raise TypeError("stats views do not drop keys")

    def __iter__(self):
        return iter(list(self._gauges))

    def __len__(self) -> int:
        return len(self._gauges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatsView({self._prefix}, {dict(self)})"
