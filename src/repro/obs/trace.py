"""End-to-end request tracing: compact contexts, spans, collectors.

One traced query threads a ``(trace_id, parent_span_id)`` pair of
u64s through every layer it crosses — minted by
:class:`~repro.net.client.NetworkClient`, carried on the INWP wire
(the optional TRACE field behind ``FLAG_TRACE``,
:mod:`repro.net.protocol`) and through the shard batch IPC — and each
layer records :class:`Span`\\ s against it:

* ``client.request`` — the root, around the whole round trip;
* ``gw.decode`` / ``gw.admission`` / ``gw.dispatch`` — the gateway's
  payload decode, the admission verdict (including refusals), and the
  bridge-thread backend call;
* ``serve.route`` — the service front-end's shard choice, tagged
  pinned vs promoted-replica;
* ``shard.batch`` — the worker's batch handling;
* ``kernel.search`` — the search kernel itself, tagged with the
  cache-hit / cold-search split, kernel microseconds and the repair
  class of the last applied delta.

Spans are plain picklable objects (workers return them over the stats
pipe), collected per-trace in a bounded LRU
(:class:`TraceCollector`), shipped over the wire by the
``TRACE_FETCH`` / ``TRACE_DUMP`` frames, and assembled into a
parent-linked tree by :func:`build_tree`.

Sampling is the client's decision and is deterministic under a seeded
RNG (``Tracer(sample_rate=r, rng=random.Random(seed))`` accepts the
same request sequence identically everywhere) — the gateway records
whatever arrives with a context and pays nothing for the rest.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "TraceCollector", "build_tree", "render_tree"]


@dataclass
class Span:
    """One timed, tagged operation within a trace. ``parent_id`` 0
    means the root. Tag values are strings (they ride the wire)."""

    trace_id: int
    span_id: int
    parent_id: int
    name: str
    start_us: float
    duration_us: float
    tags: dict = field(default_factory=dict)


class TraceCollector:
    """Per-trace span lists in a bounded LRU — the process keeps the
    most recent ``max_traces`` traces and forgets the rest, so a
    sampled firehose cannot grow gateway memory without bound."""

    def __init__(self, max_traces: int = 256) -> None:
        self.max_traces = int(max_traces)
        self._traces: OrderedDict[int, list[Span]] = OrderedDict()

    def record(self, span: Span) -> None:
        spans = self._traces.get(span.trace_id)
        if spans is None:
            spans = self._traces[span.trace_id] = []
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
        else:
            self._traces.move_to_end(span.trace_id)
        spans.append(span)

    def extend(self, spans) -> None:
        for span in spans:
            self.record(span)

    def spans_of(self, trace_id: int) -> list[Span]:
        return list(self._traces.get(trace_id, ()))

    def __len__(self) -> int:
        return len(self._traces)


#: one id sequence per *process*, shared by every Tracer instance:
#: pid bits separate ids minted by different processes (shard
#: workers), the shared counter separates co-resident tracers (a
#: client, a gateway and a service front-end all live in one process
#: in the embedded topologies). ``next()`` on a count is atomic under
#: the GIL, so no lock is needed.
_SEQ = itertools.count(1)


class Tracer:
    """Mints ids, makes the sampling decision, records spans.

    Span ids mix the process id into the high bits of a process-global
    counter, so ids minted concurrently by the client, the gateway
    loop and N shard workers never collide within one trace.
    """

    def __init__(
        self,
        collector: TraceCollector | None = None,
        *,
        sample_rate: float = 1.0,
        rng: random.Random | None = None,
    ) -> None:
        self.collector = collector if collector is not None else TraceCollector()
        self.sample_rate = float(sample_rate)
        self.rng = rng if rng is not None else random.Random()
        self._pid_bits = (os.getpid() & 0xFFFF) << 40

    def mint_id(self) -> int:
        return self._pid_bits | next(_SEQ)

    def sample(self) -> bool:
        """The deterministic per-request sampling decision: one RNG
        draw per call when the rate is fractional, none at 0 or 1."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self.rng.random() < self.sample_rate

    def start_trace(self) -> tuple[int, int] | None:
        """Mint a ``(trace_id, root_span_id)`` context, or None when
        the sampler says this request rides untraced."""
        if not self.sample():
            return None
        trace_id = 0
        while not trace_id:
            trace_id = self.rng.getrandbits(64)
        return trace_id, self.mint_id()

    def record(
        self,
        trace,
        name: str,
        start_us: float,
        duration_us: float,
        *,
        span_id: int | None = None,
        **tags,
    ) -> int:
        """Record one span under ``trace = (trace_id,
        parent_span_id)``; returns the span's id so callers can parent
        children on it (mint with :meth:`mint_id` *before* timing the
        child work when the parent span is recorded afterwards)."""
        if span_id is None:
            span_id = self.mint_id()
        self.collector.record(
            Span(
                trace_id=trace[0],
                span_id=span_id,
                parent_id=trace[1],
                name=name,
                start_us=start_us,
                duration_us=duration_us,
                tags={k: str(v) for k, v in tags.items()},
            )
        )
        return span_id

    @staticmethod
    def now_us() -> float:
        """Epoch microseconds — span starts use wall time so spans
        from different processes land in one roughly-ordered tree."""
        return time.time() * 1e6


def build_tree(spans) -> list[dict]:
    """Parent-linked span forest: ``[{"span": Span, "children":
    [...]}, ...]`` roots (parent absent or 0), children ordered by
    start time. Orphans (parent span lost to sampling or LRU
    eviction) surface as roots rather than vanishing."""
    nodes = {s.span_id: {"span": s, "children": []} for s in spans}
    roots = []
    for span in sorted(spans, key=lambda s: s.start_us):
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id)
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def render_tree(spans, indent: str = "  ") -> str:
    """Text rendering of :func:`build_tree` — one line per span with
    duration and tags, nested by parent."""
    lines: list[str] = []

    def walk(node, depth):
        span = node["span"]
        tags = " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        lines.append(
            f"{indent * depth}{span.name}  {span.duration_us:.0f}us"
            + (f"  [{tags}]" if tags else "")
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_tree(spans):
        walk(root, 0)
    return "\n".join(lines)
