"""Day-to-day evolution of the ground-truth network.

The stationarity experiments (Figure 4, Sections 6.2.x) need a network that
changes realistically between atlas snapshots: most routes persist, some
links change latency slightly, the set of lossy links churns, a few
tie-break preferences flip (moving routes), and occasional inter-AS links
appear or disappear.

``evolve_topology(base, day)`` returns an independent topology snapshot for
``day`` (day 0 is the base). Evolution is cumulative and deterministic: day
``k`` applies ``k`` successive daily steps to the base.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace

import numpy as np

from repro.topology.model import AutonomousSystem, Link, Topology
from repro.util.rng import derive_rng


@dataclass
class DayConfig:
    """Magnitudes of the daily change processes.

    Defaults are tuned so that roughly half of PoP-level paths remain
    identical across a day and ~90% keep similarity >= 0.75, matching the
    shape of the paper's Figure 4.
    """

    latency_jitter_fraction: float = 0.15
    latency_jitter_sigma: float = 0.03
    loss_toggle_on_prob: float = 0.015
    loss_toggle_off_prob: float = 0.30
    loss_resample_prob: float = 0.40
    loss_rate_range: tuple[float, float] = (0.005, 0.15)
    rank_shuffle_fraction: float = 0.12
    deviation_toggle_prob: float = 0.02
    interconnect_drop_prob: float = 0.01
    interconnect_add_prob: float = 0.01


def _copy_topology(base: Topology) -> Topology:
    """Structural copy that shares nothing mutable with ``base``."""
    ases = {
        asn: AutonomousSystem(
            asn=a.asn,
            tier=a.tier,
            pop_ids=list(a.pop_ids),
            neighbor_rank=dict(a.neighbor_rank),
            pref_deviations=dict(a.pref_deviations),
            announce_providers=a.announce_providers,
            prefix_announce_overrides=dict(a.prefix_announce_overrides),
        )
        for asn, a in base.ases.items()
    }
    return Topology(
        ases=ases,
        pops=copy.deepcopy(base.pops),
        links=dict(base.links),
        prefixes=dict(base.prefixes),
        relationships=base.relationships,  # business relationships are stable
        late_exit_pairs=set(base.late_exit_pairs),
        link_ifaces=dict(base.link_ifaces),
    )


def _step(topo: Topology, rng: np.random.Generator, cfg: DayConfig) -> None:
    """Apply one day's worth of change to ``topo`` in place."""
    lo, hi = cfg.loss_rate_range

    def fresh_loss() -> float:
        return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))

    # Latency jitter and loss churn, applied per undirected adjacency so the
    # two directions stay consistent in latency.
    for key in sorted(topo.links):
        src, dst = key
        if src > dst:
            continue
        fwd = topo.links[(src, dst)]
        rev = topo.links[(dst, src)]
        latency = fwd.latency_ms
        if rng.random() < cfg.latency_jitter_fraction:
            latency = max(0.1, latency * float(np.exp(rng.normal(0, cfg.latency_jitter_sigma))))

        def evolve_loss(current: float) -> float:
            if current == 0.0:
                return fresh_loss() if rng.random() < cfg.loss_toggle_on_prob else 0.0
            if rng.random() < cfg.loss_toggle_off_prob:
                return 0.0
            if rng.random() < cfg.loss_resample_prob:
                return fresh_loss()
            return current

        topo.links[(src, dst)] = replace(fwd, latency_ms=latency, loss_rate=evolve_loss(fwd.loss_rate))
        topo.links[(dst, src)] = replace(rev, latency_ms=latency, loss_rate=evolve_loss(rev.loss_rate))

    # Tie-break rank churn: swap two neighbor ranks in a fraction of ASes.
    for asn in sorted(topo.ases):
        as_obj = topo.ases[asn]
        if len(as_obj.neighbor_rank) >= 2 and rng.random() < cfg.rank_shuffle_fraction:
            a, b = rng.choice(sorted(as_obj.neighbor_rank), size=2, replace=False)
            a, b = int(a), int(b)
            as_obj.neighbor_rank[a], as_obj.neighbor_rank[b] = (
                as_obj.neighbor_rank[b],
                as_obj.neighbor_rank[a],
            )
        # Rarely toggle a preference deviation on or off.
        if rng.random() < cfg.deviation_toggle_prob:
            if as_obj.pref_deviations:
                as_obj.pref_deviations.pop(sorted(as_obj.pref_deviations)[0])
            else:
                neighbors = sorted(as_obj.neighbor_rank)
                if neighbors:
                    as_obj.pref_deviations[int(rng.choice(neighbors))] = 0

    # Interconnect churn: drop one parallel link of a multi-link adjacency,
    # or clone an adjacency onto a new closest PoP pair.
    adjacencies: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for (src, dst) in topo.links:
        link = topo.links[(src, dst)]
        if not link.intra_as and src < dst:
            a = topo.pops[src].asn
            b = topo.pops[dst].asn
            adjacencies.setdefault((min(a, b), max(a, b)), []).append((src, dst))
    for pair in sorted(adjacencies):
        plinks = adjacencies[pair]
        if len(plinks) >= 2 and rng.random() < cfg.interconnect_drop_prob:
            src, dst = plinks[int(rng.integers(0, len(plinks)))]
            del topo.links[(src, dst)]
            del topo.links[(dst, src)]
        elif rng.random() < cfg.interconnect_add_prob:
            a, b = pair
            existing = {frozenset(l) for l in plinks}
            candidates = [
                (p, q)
                for p in topo.ases[a].pop_ids
                for q in topo.ases[b].pop_ids
                if frozenset((p, q)) not in existing
            ]
            if candidates:
                p, q = candidates[int(rng.integers(0, len(candidates)))]
                base = topo.links[plinks[0]]
                latency = max(0.3, base.latency_ms * float(rng.uniform(0.7, 1.5)))
                topo.links[(p, q)] = Link(p, q, latency, 0.0, False)
                topo.links[(q, p)] = Link(q, p, latency, 0.0, False)


def evolve_topology(
    base: Topology,
    day: int,
    config: DayConfig | None = None,
    seed: int = 0,
) -> Topology:
    """Topology snapshot for ``day`` (cumulative daily evolution of ``base``).

    Day 0 returns a copy of the base. Deterministic in ``(base, day, seed)``.
    """
    if day < 0:
        raise ValueError("day must be non-negative")
    cfg = config or DayConfig()
    topo = _copy_topology(base)
    for d in range(1, day + 1):
        rng = derive_rng(seed, f"dynamics.day{d}")
        _step(topo, rng, cfg)
    topo.reindex()
    return topo
