"""Ground-truth routing over the synthetic topology.

`repro.routing.bgp` computes, for every destination AS (and every
traffic-engineered announcement variant), the AS-level route each AS
selects, honouring valley-free export, local preference
(customer < peer < provider, with per-AS deviations), shortest AS path,
and stable neighbor-rank tie-breaks. `repro.routing.forwarding` expands AS
paths to PoP-level paths with early-/late-exit intra-domain routing and
answers end-to-end queries (paths, RTTs, loss). `repro.routing.dynamics`
evolves a topology day by day; `repro.routing.failures` injects failures
for the detour experiments.
"""

from repro.routing.bgp import RouteTable, compute_routes
from repro.routing.forwarding import ForwardingEngine, PathResult
from repro.routing.dynamics import DayConfig, evolve_topology
from repro.routing.failures import FailureScenario, sample_failures

__all__ = [
    "RouteTable",
    "compute_routes",
    "ForwardingEngine",
    "PathResult",
    "DayConfig",
    "evolve_topology",
    "FailureScenario",
    "sample_failures",
]
