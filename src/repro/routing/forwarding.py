"""PoP-level path expansion and end-to-end ground-truth queries.

Given the AS-level route (from `repro.routing.bgp`), this module expands it
to a concrete PoP path: inside each AS, traffic follows latency-shortest
intra-PoP paths; at each AS boundary the egress link is chosen by
*early-exit* (minimize cost inside the current AS) or, for late-exit AS
pairs, by jointly minimizing the hand-off cost with one AS of lookahead.

Forward and reverse paths are computed independently, so routing asymmetry
arises naturally (different announcement policies, preference deviations
and hot-potato choices in each direction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sssp import latency_sssp
from repro.errors import NoRouteError, RoutingError
from repro.routing.bgp import RouteOracle
from repro.topology.model import Topology
from repro.util.ids import PrefixId


@dataclass(frozen=True, slots=True)
class PathResult:
    """A PoP-level one-way path with its performance annotations.

    ``latency_ms`` and ``loss`` cover only the PoP-graph links; access-link
    contributions are added by :class:`EndToEnd`.
    """

    pops: tuple[int, ...]
    links: tuple[tuple[int, int], ...]
    latency_ms: float
    loss: float

    @property
    def n_hops(self) -> int:
        return len(self.links)


@dataclass(frozen=True, slots=True)
class EndToEnd:
    """Both directions between two prefixes, with composed RTT and loss."""

    forward: PathResult
    reverse: PathResult
    rtt_ms: float
    loss_forward: float
    loss_round_trip: float


class ForwardingEngine:
    """Answers ground-truth path queries over one topology snapshot."""

    def __init__(self, topo: Topology, oracle: RouteOracle | None = None) -> None:
        self.topo = topo
        self.oracle = oracle or RouteOracle(topo)
        # Per-AS single-source shortest-path caches over intra-AS links:
        # (asn, src_pop) -> (dist dict, parent dict)
        self._sssp_cache: dict[tuple[int, int], tuple[dict[int, float], dict[int, int]]] = {}

    # -- intra-AS shortest paths ------------------------------------------

    def _intra_sssp(self, asn: int, src_pop: int) -> tuple[dict[int, float], dict[int, int]]:
        key = (asn, src_pop)
        cached = self._sssp_cache.get(key)
        if cached is not None:
            return cached
        topo = self.topo
        links = topo.links

        def neighbors(pop):
            for neighbor in topo.pop_neighbors(pop):
                link = links[(pop, neighbor)]
                if link.intra_as:
                    yield neighbor, link.latency_ms

        result = latency_sssp(src_pop, neighbors)
        self._sssp_cache[key] = result
        return result

    def intra_as_distance(self, asn: int, src_pop: int, dst_pop: int) -> float:
        """Latency of the intra-AS shortest path, inf if disconnected."""
        dist, _ = self._intra_sssp(asn, src_pop)
        return dist.get(dst_pop, float("inf"))

    def _intra_as_path(self, asn: int, src_pop: int, dst_pop: int) -> list[int]:
        dist, parent = self._intra_sssp(asn, src_pop)
        if dst_pop not in dist:
            raise RoutingError(
                f"AS {asn} PoPs {src_pop} and {dst_pop} are intra-disconnected"
            )
        path = [dst_pop]
        while path[-1] != src_pop:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # -- boundary (exit) selection ----------------------------------------

    def _choose_exit(
        self,
        current_as: int,
        next_as: int,
        ingress_pop: int,
        following_as: int | None,
        final_pop: int | None,
    ) -> tuple[int, int]:
        """Pick the (egress_pop, remote_pop) link from current_as to next_as.

        Early exit minimizes the intra-AS distance to the egress. Late exit
        additionally counts the link latency and the remote side's onward
        cost (to the next boundary, or to the destination PoP in the final
        AS), modelling two siblings jointly optimizing transit latency.
        """
        candidates = self.topo.interconnections(current_as, next_as)
        if not candidates:
            raise RoutingError(f"no interconnection from AS {current_as} to {next_as}")
        late = self.topo.uses_late_exit(current_as, next_as)

        def onward_cost(remote_pop: int) -> float:
            if following_as is None:
                if final_pop is None:
                    return 0.0
                return self.intra_as_distance(next_as, remote_pop, final_pop)
            next_links = self.topo.interconnections(next_as, following_as)
            if not next_links:
                return 0.0
            return min(
                self.intra_as_distance(next_as, remote_pop, egress2)
                for egress2, _ in next_links
            )

        def early_key(link: tuple[int, int]) -> tuple[float, int, int]:
            egress, remote = link
            return (self.intra_as_distance(current_as, ingress_pop, egress), egress, remote)

        def late_key(link: tuple[int, int]) -> tuple[float, int, int]:
            egress, remote = link
            total = (
                self.intra_as_distance(current_as, ingress_pop, egress)
                + self.topo.links[(egress, remote)].latency_ms
                + onward_cost(remote)
            )
            return (total, egress, remote)

        best = min(candidates, key=late_key if late else early_key)
        if self.intra_as_distance(current_as, ingress_pop, best[0]) == float("inf"):
            raise RoutingError(
                f"ingress PoP {ingress_pop} cannot reach egress in AS {current_as}"
            )
        return best

    # -- path expansion ----------------------------------------------------

    def pop_path_from_pop(self, src_pop: int, prefix_index: int) -> PathResult:
        """Ground-truth PoP path from ``src_pop`` to the prefix's attachment PoP."""
        src_asn = self.topo.pops[src_pop].asn
        table = self.oracle.table_for_prefix(prefix_index)
        info = self.topo.prefixes[PrefixId(prefix_index)]
        dst_pop = info.attachment_pop
        if src_asn == info.origin_asn:
            as_path: tuple[int, ...] = (src_asn,)
        else:
            if not table.reaches(src_asn):
                raise NoRouteError(src_pop, prefix_index)
            as_path = table.as_path(src_asn)

        pops: list[int] = [src_pop]
        current = src_pop
        for i, asn in enumerate(as_path[:-1]):
            next_as = as_path[i + 1]
            following = as_path[i + 2] if i + 2 < len(as_path) else None
            final = dst_pop if i + 1 == len(as_path) - 1 else None
            egress, remote = self._choose_exit(asn, next_as, current, following, final)
            segment = self._intra_as_path(asn, current, egress)
            pops.extend(segment[1:])
            pops.append(remote)
            current = remote
        last_as = as_path[-1]
        segment = self._intra_as_path(last_as, current, dst_pop)
        pops.extend(segment[1:])
        return self._annotate(tuple(pops))

    def _annotate(self, pops: tuple[int, ...]) -> PathResult:
        links: list[tuple[int, int]] = []
        latency = 0.0
        success = 1.0
        for a, c in zip(pops, pops[1:]):
            link = self.topo.links[(a, c)]
            links.append((a, c))
            latency += link.latency_ms
            success *= 1.0 - link.loss_rate
        return PathResult(
            pops=pops, links=tuple(links), latency_ms=latency, loss=1.0 - success
        )

    def pop_path(self, src_prefix_index: int, dst_prefix_index: int) -> PathResult:
        """PoP path between the attachment PoPs of two prefixes."""
        src_info = self.topo.prefixes[PrefixId(src_prefix_index)]
        return self.pop_path_from_pop(src_info.attachment_pop, dst_prefix_index)

    def as_path_between(self, src_prefix_index: int, dst_prefix_index: int) -> tuple[int, ...]:
        """AS-level ground-truth path between two prefixes (deduplicated)."""
        path = self.pop_path(src_prefix_index, dst_prefix_index)
        as_seq: list[int] = []
        for pop in path.pops:
            asn = self.topo.pops[pop].asn
            if not as_seq or as_seq[-1] != asn:
                as_seq.append(asn)
        return tuple(as_seq)

    def end_to_end(self, src_prefix_index: int, dst_prefix_index: int) -> EndToEnd:
        """Both directions between two prefixes, with access links included."""
        src_info = self.topo.prefixes[PrefixId(src_prefix_index)]
        dst_info = self.topo.prefixes[PrefixId(dst_prefix_index)]
        forward = self.pop_path(src_prefix_index, dst_prefix_index)
        reverse = self.pop_path(dst_prefix_index, src_prefix_index)
        access_lat = src_info.access_latency_ms + dst_info.access_latency_ms
        rtt = forward.latency_ms + reverse.latency_ms + 2 * access_lat
        access_success = (1 - src_info.access_loss) * (1 - dst_info.access_loss)
        fwd_loss = 1 - (1 - forward.loss) * access_success
        rt_loss = 1 - (1 - forward.loss) * (1 - reverse.loss) * access_success**2
        return EndToEnd(
            forward=forward,
            reverse=reverse,
            rtt_ms=rtt,
            loss_forward=fwd_loss,
            loss_round_trip=rt_loss,
        )

    def rtt_ms(self, src_prefix_index: int, dst_prefix_index: int) -> float:
        return self.end_to_end(src_prefix_index, dst_prefix_index).rtt_ms

    def reachable(self, src_prefix_index: int, dst_prefix_index: int) -> bool:
        """True if a policy-compliant route exists in both directions."""
        try:
            self.pop_path(src_prefix_index, dst_prefix_index)
            self.pop_path(dst_prefix_index, src_prefix_index)
        except (NoRouteError, RoutingError):
            return False
        return True
