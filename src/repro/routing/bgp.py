"""AS-level route computation (ground truth).

For each *announcement* (a destination AS together with the provider set it
exports its prefixes through), we simulate BGP route selection to a fixed
point. Each AS picks its best route by

1. local preference class — customer(0) < peer(1) < provider(2), with
   per-AS deviations overriding the class for specific neighbors,
2. AS-path length,
3. the AS's stable neighbor rank (deterministic tie-break).

Export follows the standard rules: routes learned from customers are
exported to everyone; routes learned from peers/providers only to
customers. Siblings exchange all routes (treated as an extension of the
same organization).

The fixed point is computed with synchronous rounds; with valley-free
preferences this converges in O(diameter) rounds, and we cap rounds as a
safety net against (intentionally modelled) preference deviations creating
slow convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.topology.model import Topology
from repro.topology.relationships import Relationship

#: Preference classes (lower is better).
PREF_CUSTOMER = 0
PREF_PEER = 1
PREF_PROVIDER = 2

_MAX_ROUNDS = 60


def _pref_class(topo: Topology, asn: int, neighbor: int) -> int:
    """Preference class AS ``asn`` assigns routes learned from ``neighbor``."""
    override = topo.ases[asn].pref_deviations.get(neighbor)
    if override is not None:
        return override
    rel = topo.relationships.get(asn, neighbor)
    if rel is Relationship.PROVIDER:  # neighbor is my customer
        return PREF_CUSTOMER
    if rel is Relationship.SIBLING:
        return PREF_CUSTOMER  # same organization: treated like customer routes
    if rel is Relationship.PEER:
        return PREF_PEER
    return PREF_PROVIDER


@dataclass(frozen=True, slots=True)
class _Route:
    """A candidate route at some AS: preference class, path, learned-from."""

    pref: int
    path: tuple[int, ...]  # AS path, first element = this AS's next hop ... origin
    learned_from: int      # neighbor the route was learned from (== path[0])
    learned_rel: Relationship | None  # relationship toward that neighbor


@dataclass
class RouteTable:
    """Selected AS routes toward one announcement.

    ``next_hop[asn]`` is the neighbor ``asn`` forwards to; origin ASes map
    to themselves. ``as_path(asn)`` returns the full path including ``asn``
    and the origin.
    """

    origin: int
    announce_key: frozenset[int] | None
    next_hop: dict[int, int] = field(default_factory=dict)
    _paths: dict[int, tuple[int, ...]] = field(default_factory=dict, repr=False)

    def reaches(self, asn: int) -> bool:
        return asn in self._paths or asn == self.origin

    def as_path(self, asn: int) -> tuple[int, ...]:
        """AS path from ``asn`` to the origin, inclusive on both ends."""
        if asn == self.origin:
            return (asn,)
        try:
            return (asn,) + self._paths[asn]
        except KeyError:
            raise RoutingError(f"AS {asn} has no route to AS {self.origin}") from None

    def ases_with_routes(self) -> list[int]:
        return sorted(self._paths)


def _export_allowed(
    topo: Topology, owner: int, route: _Route, to_neighbor: int
) -> bool:
    """May ``owner`` export ``route`` to ``to_neighbor``?

    Standard rules, keyed on where the route was learned: own/customer/
    sibling routes go to everyone; peer/provider routes go only to
    customers (and siblings).
    """
    rel_to = topo.relationships.get(owner, to_neighbor)
    if rel_to is None:
        return False
    if rel_to is Relationship.SIBLING:
        return True  # same organization sees everything
    if rel_to is Relationship.PROVIDER:
        # to_neighbor is owner's customer: export everything
        return True
    # Exporting to a peer or provider: only own or customer/sibling routes.
    if route.learned_rel is None:
        return True  # origin's own announcement
    return route.learned_rel in (Relationship.PROVIDER, Relationship.SIBLING)


def _origin_export_allowed(
    topo: Topology,
    origin: int,
    to_neighbor: int,
    announce: frozenset[int] | None,
) -> bool:
    """May the origin announce its own prefixes to ``to_neighbor``?

    ``announce`` restricts which *providers* receive the announcement
    (traffic engineering); customers, peers and siblings always do.
    """
    rel = topo.relationships.get(origin, to_neighbor)
    if rel is None:
        return False
    if rel is Relationship.CUSTOMER and announce is not None:
        return to_neighbor in announce
    return True


def compute_routes(
    topo: Topology,
    origin: int,
    announce: frozenset[int] | None = None,
) -> RouteTable:
    """Compute every AS's selected route toward ``origin``.

    ``announce`` optionally restricts the providers through which the
    origin announces (per-AS or per-prefix traffic engineering). The result
    is deterministic for a given topology.
    """
    if origin not in topo.ases:
        raise RoutingError(f"unknown origin AS {origin}")

    best: dict[int, _Route] = {}
    # Seed: origin's neighbors that receive the announcement.
    frontier: set[int] = set()
    for neighbor in topo.relationships.neighbors(origin):
        if not _origin_export_allowed(topo, origin, neighbor, announce):
            continue
        route = _Route(
            pref=_pref_class(topo, neighbor, origin),
            path=(origin,),
            learned_from=origin,
            learned_rel=topo.relationships.get(neighbor, origin),
        )
        best[neighbor] = route
        frontier.add(neighbor)

    rank = {asn: topo.ases[asn].neighbor_rank for asn in topo.ases}

    def better(asn: int, a: _Route, b: _Route | None) -> bool:
        if b is None:
            return True
        ka = (a.pref, len(a.path), rank[asn].get(a.learned_from, 1 << 30))
        kb = (b.pref, len(b.path), rank[asn].get(b.learned_from, 1 << 30))
        return ka < kb

    for _ in range(_MAX_ROUNDS):
        if not frontier:
            break
        next_frontier: set[int] = set()
        # Deterministic iteration order.
        for owner in sorted(frontier):
            route = best[owner]
            for neighbor in topo.relationships.neighbors(owner):
                if neighbor == origin or neighbor in route.path or neighbor == route.learned_from:
                    continue
                if not _export_allowed(topo, owner, route, neighbor):
                    continue
                candidate = _Route(
                    pref=_pref_class(topo, neighbor, owner),
                    path=(owner,) + route.path,
                    learned_from=owner,
                    learned_rel=topo.relationships.get(neighbor, owner),
                )
                if better(neighbor, candidate, best.get(neighbor)):
                    best[neighbor] = candidate
                    next_frontier.add(neighbor)
        frontier = next_frontier

    table = RouteTable(origin=origin, announce_key=announce)
    for asn, route in best.items():
        table.next_hop[asn] = route.learned_from
        table._paths[asn] = route.path
    table.next_hop[origin] = origin
    return table


class RouteOracle:
    """Caches :func:`compute_routes` results per (origin, announcement).

    The forwarding engine asks for routes toward a *prefix*; this resolves
    the prefix's effective announcement configuration and memoizes the
    route table.
    """

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self._cache: dict[tuple[int, frozenset[int] | None], RouteTable] = {}

    def announcement_for_prefix(self, prefix_index: int) -> tuple[int, frozenset[int] | None]:
        """Resolve (origin ASN, announce provider set) for a prefix."""
        from repro.util.ids import PrefixId

        info = self.topo.prefixes.get(PrefixId(prefix_index))
        if info is None:
            raise RoutingError(f"unknown prefix index {prefix_index}")
        as_obj = self.topo.ases[info.origin_asn]
        announce = as_obj.prefix_announce_overrides.get(
            prefix_index, as_obj.announce_providers
        )
        return info.origin_asn, announce

    def table_for(self, origin: int, announce: frozenset[int] | None) -> RouteTable:
        key = (origin, announce)
        if key not in self._cache:
            self._cache[key] = compute_routes(self.topo, origin, announce)
        return self._cache[key]

    def table_for_prefix(self, prefix_index: int) -> RouteTable:
        origin, announce = self.announcement_for_prefix(prefix_index)
        return self.table_for(origin, announce)

    def invalidate(self) -> None:
        self._cache.clear()
