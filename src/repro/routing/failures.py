"""Failure injection and reachability under failures (Figure 11 substrate).

The detour experiment needs wide-area outages: events that make a
destination unreachable from *some* sources while others can still reach
it (the paper analyzes cases where >=10% of sources are cut off but >=10%
still get through). We model an outage as a set of failed directed
PoP-level links — a path works only if it avoids every failed link. This
mirrors the black-hole behaviour the paper's detour case targets (BGP has
not healed the path; alternate AS-level routes through detour hosts may
still work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import NoRouteError, RoutingError
from repro.routing.forwarding import ForwardingEngine
from repro.topology.model import Topology
from repro.util.rng import derive_rng


@dataclass
class FailureScenario:
    """A single outage event: the failed directed links."""

    failed_links: frozenset[tuple[int, int]]
    description: str = ""

    def path_works(self, links: tuple[tuple[int, int], ...]) -> bool:
        return not any(link in self.failed_links for link in links)


class FailureAwareReachability:
    """Reachability oracle for one topology snapshot under a failure set."""

    def __init__(self, engine: ForwardingEngine, scenario: FailureScenario) -> None:
        self.engine = engine
        self.scenario = scenario
        self._cache: dict[tuple[int, int], bool] = {}

    def reachable(self, src_prefix: int, dst_prefix: int) -> bool:
        """True if the ground-truth path (both directions) avoids failures."""
        key = (src_prefix, dst_prefix)
        if key not in self._cache:
            try:
                fwd = self.engine.pop_path(src_prefix, dst_prefix)
                rev = self.engine.pop_path(dst_prefix, src_prefix)
                ok = self.scenario.path_works(fwd.links) and self.scenario.path_works(rev.links)
            except (NoRouteError, RoutingError):
                ok = False
            self._cache[key] = ok
        return self._cache[key]

    def detour_works(self, src_prefix: int, relay_prefix: int, dst_prefix: int) -> bool:
        """True if routing src -> relay -> dst avoids all failures."""
        return self.reachable(src_prefix, relay_prefix) and self.reachable(
            relay_prefix, dst_prefix
        )


@dataclass
class _Candidate:
    scenario: FailureScenario
    cut_sources: list[int] = field(default_factory=list)
    ok_sources: list[int] = field(default_factory=list)


def sample_failures(
    topo: Topology,
    engine: ForwardingEngine,
    dst_prefix: int,
    source_prefixes: list[int],
    rng: np.random.Generator | None = None,
    seed: int = 0,
    min_cut_fraction: float = 0.10,
    min_ok_fraction: float = 0.10,
    max_attempts: int = 60,
) -> tuple[FailureScenario, list[int], list[int]] | None:
    """Sample an outage near ``dst_prefix`` that partially cuts the sources.

    Fails a small set of links concentrated around the destination's
    upstream (where real partial outages live), retrying until between
    ``min_cut_fraction`` and ``1 - min_ok_fraction`` of sources lose
    reachability. Returns ``(scenario, cut_sources, ok_sources)`` or None
    if no qualifying event was found.
    """
    rng = rng if rng is not None else derive_rng(seed, f"failures.{dst_prefix}")
    # Collect the links used by each source's path to the destination.
    links_per_source: dict[int, set[tuple[int, int]]] = {}
    for src in source_prefixes:
        try:
            fwd = engine.pop_path(src, dst_prefix)
            rev = engine.pop_path(dst_prefix, src)
        except (NoRouteError, RoutingError):
            continue
        links_per_source[src] = set(fwd.links) | set(rev.links)
    if len(links_per_source) < 3:
        return None
    all_links = sorted({l for links in links_per_source.values() for l in links})

    for _ in range(max_attempts):
        # Fail 1-4 links, biased toward links shared by several sources
        # (transit-side failures) but not by all (so somebody survives).
        n_fail = int(rng.integers(1, 5))
        usage = {
            link: sum(link in links for links in links_per_source.values())
            for link in all_links
        }
        n_sources = len(links_per_source)
        partial = [
            link for link, count in usage.items() if 0 < count < n_sources
        ]
        if not partial:
            continue
        weights = np.array([usage[link] for link in partial], dtype=float)
        weights /= weights.sum()
        idx = rng.choice(len(partial), size=min(n_fail, len(partial)), replace=False, p=weights)
        failed = frozenset(partial[int(i)] for i in idx)
        # Fail both directions of each chosen adjacency.
        bidirectional = frozenset(
            link for (a, b) in failed for link in ((a, b), (b, a))
        )
        scenario = FailureScenario(
            failed_links=bidirectional,
            description=f"outage near prefix {dst_prefix}",
        )
        cut = [
            src for src, links in links_per_source.items()
            if any(l in bidirectional for l in links)
        ]
        ok = [src for src in links_per_source if src not in set(cut)]
        if (
            len(cut) >= min_cut_fraction * n_sources
            and len(ok) >= min_ok_fraction * n_sources
        ):
            return scenario, sorted(cut), sorted(ok)
    return None
